"""Scheduling conformance axis: batched superblock dispatch vs the
seed step-wise scheduler.

``Process.run`` drives every scheduler quantum as one
:meth:`CPU.run_quantum` dispatch, retiring whole superblocks per
scheduling decision.  That must be a pure host-side speedup: for every
quantum and every attachment mode (bare machine or FPVM-attached), the
batched scheduler must be bit-identical to the seed single-step loop in
every guest-visible observable — stdout, the per-thread
cycle/instruction/trap ledgers, the order joins were satisfied, the
final-memory digest, and total simulated cycles.

:func:`sweep` runs the axis over each program × attach mode × quantum
× engine tier — batched superblocks with cross-quantum chaining off
(``batched``), chaining on with the trace JIT pinned off (``chained``),
and chaining plus the fused trace JIT (``traced``) — against the
stepwise seed, plus a cross-quantum check per tier that the batched
runs agree with *each other*: the axis programs synchronize only
through ``thread_join``, so their results must not depend on the
scheduling granularity either.  The ``traced`` cells are the
scheduler-facing half of the trace-JIT contract: fused closures hand
unretired budget back at side exits, so even quantum 1 — where no
chain cycle ever completes in-run and traces only stabilize through
cross-run heat, if at all — must stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.conformance import oracle
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.assembler import assemble
from repro.machine.hostlib import install_host_library
from repro.machine.process import Process
from repro.workloads import build_program

#: scheduler quanta swept by the axis — degenerate (1 step per
#: dispatch), odd (7, so superblock bodies straddle quantum
#: boundaries and the engine falls back to single-stepping at the
#: budget edge), and the scheduler default (64).
QUANTA = (1, 7, 64)

#: engine tiers swept against the stepwise seed: tier label -> the
#: ``(chain, trace)`` flags handed to :class:`Process` (all run
#: ``uops=True``).  ``chained`` follows direct-jump links across
#: cached superblocks inside a quantum with the trace JIT pinned off;
#: ``traced`` additionally fuses stable chain cycles into generated
#: closures.  Both flags are pinned explicitly so the tiers stay
#: distinct regardless of the ``FPVM_TRACEJIT`` environment default.
TIERS = {
    "batched": (False, False),
    "chained": (True, False),
    "traced": (True, True),
}


def cell_count() -> int:
    """Number of cells :func:`sweep` emits — per program × mode × tier,
    one cell per quantum plus the cross-quantum agreement check."""
    return len(PROGRAMS) * len(ATTACH_MODES) * len(TIERS) * (len(QUANTA) + 1)


def _staggered_source(threads: int = 3, base: int = 24) -> str:
    """Workers with *staggered* loop lengths: shard ``i`` runs
    ``base * (i + 1)`` FP iterations, so workers halt in different
    scheduler rounds and main's joins (issued in reverse tid order)
    park and resume at different times — the join-order observable."""
    counts = ", ".join(str(base * (i + 1)) for i in range(threads))
    vals = ", ".join(repr(1.0 + 0.5 * i) for i in range(threads))
    lines = [
        ".data",
        f"counts: .quad {counts}",
        f"vals: .double {vals}",
        "k: .double 0.125",
        "",
        ".text",
        "worker:",
        "  ; rdi = shard index",
        "  mov rbx, counts",
        "  mov rcx, [rbx + rdi*8]",
        "  mov rbx, vals",
        "  movsd xmm0, [rbx + rdi*8]",
        "  movsd xmm1, [rip + k]",
        "sloop:",
        "  mulsd xmm0, xmm1",
        "  addsd xmm0, xmm1",
        "  dec rcx",
        "  jne sloop",
        "  mov rbx, vals",
        "  movsd [rbx + rdi*8], xmm0",
        "  ret",
        "",
        "main:",
    ]
    for i in range(threads):
        lines += [
            "  mov rdi, worker",
            f"  mov rsi, {i}",
            "  call thread_create",
        ]
    for tid in range(threads, 0, -1):  # reverse join order
        lines += [
            f"  mov rdi, {tid}",
            "  call thread_join",
        ]
    for i in range(threads):
        lines += [
            f"  movsd xmm0, [rip + vals + {8 * i}]",
            "  call print_f64",
        ]
    lines.append("  hlt")
    return "\n".join(lines) + "\n"


def _staggered_program():
    program = assemble(_staggered_source())
    install_host_library(program)
    return program


def _lorenz_mt_program():
    return build_program("lorenz_mt", scale=40, threads=3)


def _mixed_mt_program():
    return build_program("mixed_mt", scale=30, threads=4, fp_threads=2)


def _denorm_storm_program():
    return build_program("denorm_storm", scale=60)


#: label -> zero-arg Program factory.  ``staggered`` exercises the
#: join-order/park-resume machinery; ``lorenz_mt`` is the evaluation
#: workload (long straight-line FP bodies, the superblock best case);
#: ``mixed_mt`` alternates integer-only and FP quanta, so the lazy-FP
#: ownership switching (§3.1) must stay bit-identical across tiers and
#: quanta too; ``denorm_storm`` puts the rare trap classes (denormal,
#: underflow) on the scheduling axis, so preemption mid-trap-storm
#: cannot perturb rare-class delivery either.
PROGRAMS = {
    "staggered": _staggered_program,
    "lorenz_mt": _lorenz_mt_program,
    "mixed_mt": _mixed_mt_program,
    "denorm_storm": _denorm_storm_program,
}

#: label -> FPVMConfig factory taking the uop-pipeline switch, or None
#: for a bare (unvirtualized) process.
ATTACH_MODES = {
    "native": None,
    "seq_short": lambda uops: FPVMConfig.seq_short(uops=uops),
}


def process_fingerprint(proc: Process, vm=None) -> dict:
    """Every guest-visible observable of a finished Process run."""
    return {
        "output": tuple(proc.main.output),
        "threads": tuple(
            (t.tid, t.cycles, t.work_cycles, t.instruction_count,
             t.fp_trap_count, t.bp_trap_count)
            for t in proc.threads
        ),
        "join_log": tuple(proc.join_log),
        "digest": oracle.memory_digest(proc.main, vm),
        "cycles": proc.total_cycles,
    }


def run_schedule(
    factory,
    quantum: int,
    uops: bool,
    mode: str = "native",
    max_steps: int = oracle.DEFAULT_MAX_STEPS,
    chain: bool | None = None,
    trace: bool | None = None,
) -> dict:
    """One run of ``factory()`` under the given quantum/tier/mode,
    returning its :func:`process_fingerprint`."""
    config_factory = ATTACH_MODES[mode]
    proc = Process(factory(), uops=uops, chain=chain, trace=trace)
    kernel = LinuxKernel()
    vm = None
    if config_factory is None:
        proc.kernel = kernel
    else:
        vm = FPVM(config_factory(uops)).attach_process(proc, kernel)
    proc.run(quantum=quantum, max_steps=max_steps)
    return process_fingerprint(proc, vm)


@dataclass
class SchedCheck:
    """One cell of the axis.  ``quantum == 0`` marks the cross-quantum
    agreement check over that tier's batched runs."""

    program: str
    mode: str
    quantum: int
    ok: bool
    detail: str = ""
    tier: str = "batched"

    @property
    def label(self) -> str:
        q = f"q={self.quantum}" if self.quantum else "cross-quantum"
        return f"{self.program}/{self.mode}/{self.tier}/{q}"

    def __str__(self) -> str:
        return f"{self.label}: {'ok' if self.ok else 'FAIL ' + self.detail}"


def _diff_keys(a: dict, b: dict) -> list[str]:
    return sorted(k for k in a if a[k] != b[k])


def sweep(progress=None) -> list[SchedCheck]:
    """The full axis: every program × mode × quantum × tier, each tier
    vs stepwise, plus each tier's cross-quantum agreement check."""
    checks: list[SchedCheck] = []

    def emit(check: SchedCheck) -> None:
        checks.append(check)
        if progress is not None:
            progress(check)

    for pname, factory in PROGRAMS.items():
        for mode in ATTACH_MODES:
            tiered: dict[str, dict[int, dict]] = {t: {} for t in TIERS}
            for quantum in QUANTA:
                # one stepwise reference run shared by every tier.
                stepwise = run_schedule(factory, quantum, uops=False, mode=mode)
                for tier, (chain, trace) in TIERS.items():
                    got = run_schedule(factory, quantum, uops=True,
                                       mode=mode, chain=chain, trace=trace)
                    tiered[tier][quantum] = got
                    bad = _diff_keys(stepwise, got)
                    emit(SchedCheck(
                        pname, mode, quantum, not bad,
                        "" if not bad
                        else f"{tier} != stepwise in: " + ", ".join(bad),
                        tier=tier,
                    ))
            # Across quanta only the guest-visible *result* is pinned:
            # join park order and per-thread cycle/trap attribution are
            # scheduling observables (e.g. whichever thread reaches a
            # shared patch site first pays its promotion), so they vary
            # with the quantum — which is exactly why the cells above
            # compare batched vs stepwise at *equal* quantum.
            for tier, by_quantum in tiered.items():
                first = by_quantum[QUANTA[0]]
                bad = sorted({
                    key
                    for quantum in QUANTA[1:]
                    for key in _diff_keys(first, by_quantum[quantum])
                    if key in ("output", "digest")
                })
                emit(SchedCheck(
                    pname, mode, 0, not bad,
                    "" if not bad
                    else "quantum-dependent results in: " + ", ".join(bad),
                    tier=tier,
                ))
    return checks


def render_checks(checks: list[SchedCheck]) -> str:
    failed = [c for c in checks if not c.ok]
    lines = [f"  {c}" for c in (failed or checks)]
    verdict = (f"{len(failed)}/{len(checks)} cells FAILED" if failed
               else f"all {len(checks)} cells bit-identical")
    return "\n".join(lines + [f"scheduling axis: {verdict}"])
