"""The conformance matrix: configuration axes × programs, swept
differentially.

A **group** fixes (program, altmath, patch-site source, magic traps)
and runs the four §6 trap configurations NONE / SEQ / SHORT /
SEQ_SHORT over it.  Within a group every config must agree
bit-for-bit on stdout and on the demoted final-memory digest: the trap
delivery mechanism and the sequence emulator are pure accelerations
and may never change what the program computes.  Groups running Boxed
IEEE must additionally agree with the un-virtualized native run.

Axes that change *numerics* (the altmath backend; for non-IEEE
backends also the demotion schedule implied by patch sites and magic
traps) live on the group, not inside it — cross-group outputs are
never compared.

Patch-site discovery is shared per group the way a developer shares a
profiling run: the profiler runs once and its sites feed all four
configs, so the comparison isolates the trap axes exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.conformance import oracle
from repro.conformance.generators import fuzz_program
from repro.core.profiler import profile_patch_sites
from repro.core.vm import FPVMConfig
from repro.harness.configs import CONFIG_ORDER, named_configs
from repro.workloads import build_program

#: group axes exercised by the plans, for reference/CLI help.
PATCH_SOURCES = ("profiler", "static", "none")


@dataclass(frozen=True)
class Group:
    """One comparison group: a program plus the numerics-relevant axes."""

    program: str              #: workload name, or "fuzz:<seed>"
    altmath: str = "boxed_ieee"
    patch_source: str = "profiler"
    magic: bool = True
    scale: int | None = None  #: workload scale (ignored for fuzz)
    #: extra FPVMConfig fields shared by all four configs (stress knobs:
    #: gc_threshold, decode_cache_capacity, trap_all_fp, ...).
    config_kwargs: tuple = ()

    @property
    def label(self) -> str:
        bits = [self.program, self.altmath, self.patch_source,
                "magic" if self.magic else "int3"]
        if self.config_kwargs:
            bits += [f"{k}={v}" for k, v in self.config_kwargs]
        return "/".join(str(b) for b in bits)

    def build_program(self):
        """A fresh program image (attach mutates the image, so every
        run — native included — gets its own)."""
        if self.program.startswith("fuzz:"):
            return fuzz_program(int(self.program.split(":", 1)[1]))
        return build_program(self.program, self.scale)

    def configs(self, patch_sites: frozenset | None) -> dict[str, FPVMConfig]:
        common = dict(self.config_kwargs)
        common["magic_traps"] = self.magic
        common["patch_site_source"] = self.patch_source
        configs = named_configs(altmath=self.altmath, **common)
        if patch_sites is not None:
            configs = {n: c.with_(patch_sites=patch_sites)
                       for n, c in configs.items()}
        return configs


@dataclass
class GroupResult:
    group: Group
    native: oracle.CellRun | None
    runs: dict[str, oracle.CellRun] = field(default_factory=dict)
    mismatches: list[str] = field(default_factory=list)
    invariant_failures: list[str] = field(default_factory=list)
    skipped: str | None = None

    @property
    def ok(self) -> bool:
        return not self.mismatches and not self.invariant_failures

    @property
    def cells(self) -> int:
        return len(self.runs)


@dataclass
class MatrixReport:
    results: list[GroupResult] = field(default_factory=list)

    @property
    def cells(self) -> int:
        return sum(r.cells for r in self.results)

    @property
    def mismatches(self) -> list[str]:
        return [m for r in self.results for m in r.mismatches]

    @property
    def invariant_failures(self) -> list[str]:
        return [m for r in self.results for m in r.invariant_failures]

    @property
    def skipped(self) -> list[str]:
        return [f"{r.group.label}: {r.skipped}" for r in self.results if r.skipped]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)


# --------------------------------------------------------------- plans
def smoke_plan() -> list[Group]:
    """The fast grid: 7 groups × 4 configs = 28 cells, a few seconds.

    Covers every axis at least once: all four trap configs (every
    group), two altmath backends, all three patch-site sources, magic
    and int3 delivery, real workloads and fuzz programs.
    """
    return [
        Group("lorenz", scale=60),
        Group("fbench", scale=4),
        # static analysis over-approximates (dozens of sites on
        # three_body) — heavy patch traffic through the magic path.
        Group("three_body", scale=8, patch_source="static"),
        # the same workload through the baseline int3 path.
        Group("three_body", scale=8, magic=False),
        Group("fuzz:3", patch_source="none"),
        Group("fuzz:5", altmath="mpfr"),
        Group("fuzz:11", patch_source="static", magic=False),
    ]


def full_plan() -> list[Group]:
    """The whole matrix: every workload, every altmath backend, every
    patch source × magic combination, plus stress knobs (tiny GC
    threshold, tiny decode cache, trap-everything decreased-precision
    mode) and a fuzz-seed sweep."""
    groups = list(smoke_plan())
    # every registered workload under the default axes.
    groups += [
        Group("double_pendulum", scale=10),
        Group("ffbench", scale=4),
        Group("enzo", scale=6),
    ]
    # every altmath backend (cross-config identity; boxed_ieee above
    # also proves native equality).  Scales stay small where the value
    # representation grows with iteration count (rational denominators
    # roughly double per lorenz step).
    for backend, scale in (("mpfr", 60), ("posit", 20),
                           ("interval", 20), ("rational", 10)):
        groups.append(Group("lorenz", scale=scale, altmath=backend))
    # decreased-precision mode: FP hardware off, every FP instruction
    # emulated (§2.3) — the delivery axes must still be pure.
    groups.append(Group("lorenz", scale=40, altmath="lowprec",
                        config_kwargs=(("trap_all_fp", True),)))
    # patch-source × magic sweep on the workload with real profiler
    # sites.
    groups += [
        Group("three_body", scale=8),
        Group("three_body", scale=8, patch_source="static", magic=False),
    ]
    # stress knobs: aggressive GC and a thrashing decode cache.
    groups += [
        Group("fuzz:7", config_kwargs=(("gc_threshold", 32),)),
        Group("fuzz:9", config_kwargs=(("decode_cache_capacity", 4),)),
    ]
    # fuzz-seed sweep.
    groups += [Group(f"fuzz:{seed}") for seed in (0, 1, 2, 13, 17, 21)]
    return groups


def trap_class_plan() -> list[Group]:
    """The trap-diverse rows: the two storm workloads (every #XF class —
    Invalid, Inexact, Denormal, Overflow, Underflow, DivByZero — fires
    on every iteration of one or the other) swept across the patch
    source / delivery / altmath axes.  Differential identity here means
    the rare-class delivery paths are as pure as the invalid/inexact
    ones the §6 workloads exercise."""
    return [
        Group("denorm_storm", scale=60),
        Group("denorm_storm", scale=60, patch_source="static", magic=False),
        Group("denorm_storm", scale=40, altmath="mpfr"),
        Group("range_storm", scale=50),
        Group("range_storm", scale=50, patch_source="static", magic=False),
    ]


def trap_class_coverage(scales: dict | None = None) -> dict[str, dict[str, int]]:
    """Measured per-class trap counts for the storm workloads under the
    NONE config with flow recording on (trap-everything shows every
    class at its true site).  The CLI uses this to prove the suite is
    trap-diverse: every class must appear somewhere in the union."""
    from repro.harness.runner import run_fpvm

    merged = {"denorm_storm": 40, "range_storm": 40}
    merged.update(scales or {})
    out = {}
    for w, scale in merged.items():
        result = run_fpvm(w, FPVMConfig.none(flow=True), scale=scale)
        out[w] = {c: int(n) for c, n in sorted(result.flow.traps_by_class.items())}
    return out


# --------------------------------------------------------------- sweep
def run_group(group: Group, max_steps: int = oracle.DEFAULT_MAX_STEPS) -> GroupResult:
    """Native run + the four trap configs + comparison for one group."""
    # Share one profiling pass across the group's configs, like
    # run_comparison does.
    patch_sites = None
    if group.patch_source == "profiler":
        patch_sites = frozenset(profile_patch_sites(group.build_program()))
    elif group.patch_source == "none":
        # "none" is only sound for programs the profiler finds siteless:
        # with real sites unpatched, boxed bits escape and demotion
        # timing becomes config-dependent.
        sites = profile_patch_sites(group.build_program())
        if sites:
            return GroupResult(group, None,
                               skipped=f"{len(sites)} patch sites but "
                                       "patch_source='none'")

    native = oracle.run_native(group.build_program(), max_steps)
    result = GroupResult(group, native)
    configs = group.configs(patch_sites)
    for name in CONFIG_ORDER:
        run = oracle.run_cell(group.build_program(), configs[name], name, max_steps)
        result.runs[name] = run
        for failure in run.invariant_failures:
            result.invariant_failures.append(f"{group.label}/{name}: {failure}")
    _compare(group, native, result)
    return result


def _compare(group: Group, native: oracle.CellRun, result: GroupResult) -> None:
    runs = result.runs
    reference = runs[CONFIG_ORDER[0]]
    for name in CONFIG_ORDER[1:]:
        run = runs[name]
        if run.output != reference.output:
            result.mismatches.append(
                f"{group.label}: stdout of {name} diverges from "
                f"{reference.config_name}"
            )
        if run.memory_digest != reference.memory_digest:
            result.mismatches.append(
                f"{group.label}: memory digest of {name} diverges from "
                f"{reference.config_name}"
            )
    if group.altmath == "boxed_ieee":
        for name in CONFIG_ORDER:
            run = runs[name]
            if run.output != native.output:
                result.mismatches.append(
                    f"{group.label}: stdout of {name} diverges from native"
                )
            if run.memory_digest != native.memory_digest:
                result.mismatches.append(
                    f"{group.label}: memory digest of {name} diverges "
                    "from native"
                )


def sweep(groups: list[Group], max_steps: int = oracle.DEFAULT_MAX_STEPS,
          progress=None) -> MatrixReport:
    report = MatrixReport()
    for group in groups:
        result = run_group(group, max_steps)
        report.results.append(result)
        if progress is not None:
            progress(result)
    return report


# -------------------------------------------------------------- report
def render_report(report: MatrixReport) -> str:
    lines = []
    for r in report.results:
        if r.skipped:
            lines.append(f"SKIP {r.group.label:<50} {r.skipped}")
            continue
        status = "ok" if r.ok else "FAIL"
        slow = ""
        if r.native and r.native.cycles:
            worst = max(run.cycles for run in r.runs.values())
            slow = f"worst slowdown {worst / r.native.cycles:5.1f}x"
        lines.append(f"{status:>4} {r.group.label:<50} {r.cells} cells  {slow}")
    lines.append("")
    lines.append(
        f"{report.cells} cells, {len(report.mismatches)} mismatches, "
        f"{len(report.invariant_failures)} invariant failures, "
        f"{len(report.skipped)} groups skipped"
    )
    for m in report.mismatches:
        lines.append(f"  MISMATCH: {m}")
    for m in report.invariant_failures:
        lines.append(f"  INVARIANT: {m}")
    return "\n".join(lines)
