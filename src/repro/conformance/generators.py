"""Seeded mini-C program generators for differential testing.

One grammar, shared by the fuzz tests (``tests/core/
test_differential_fuzz.py``) and the conformance matrix sweep, so the
same program population exercises both.  Programs are generated from a
seeded grammar over the mini-C AST: arithmetic chains, array traffic,
branches, loops, libm calls, fused multiply-adds and negations,
exercising promotion, boxing, sequence termination, wrappers, GC and
correctness patches together.

Everything is deterministic in the seed: ``gen_program(seed)`` always
yields the same module, so a native run and any number of virtualized
runs can be compared bit for bit.
"""

from __future__ import annotations

import random

from repro.compiler import (
    Bin, Call, Cast, FCmp, Fma, For, IBin, INum, IVar, If, Let, Load,
    Min, Module, Neg, Num, Print, Sqrt, Store, Var,
)
from repro.machine.hostlib import install_host_library
from repro.machine.program import Program

#: constants the grammar draws from — a spread of magnitudes so boxing,
#: promotion and libm domains all get exercised.
CONSTS = [0.1, 0.2, 0.3, 0.5, 1.0, 1.5, 2.0, -0.7, 3.14159, 1e10, 1e-10, -2.5]
LIBM = ["sin", "cos", "atan", "exp", "fabs"]


def gen_expr(rng: random.Random, depth: int, vars_: list[str]):
    """A random double expression of bounded depth."""
    if depth <= 0 or rng.random() < 0.3:
        choice = rng.random()
        if choice < 0.45 and vars_:
            return Var(rng.choice(vars_))
        if choice < 0.8:
            return Num(rng.choice(CONSTS))
        return Load("arr", INum(rng.randrange(8)))
    kind = rng.random()
    if kind < 0.55:
        op = rng.choice(["+", "-", "*", "*", "/"])
        return Bin(op, gen_expr(rng, depth - 1, vars_), gen_expr(rng, depth - 1, vars_))
    if kind < 0.65:
        return Neg(gen_expr(rng, depth - 1, vars_))
    if kind < 0.72:
        # sqrt of a square keeps the domain safe
        inner = gen_expr(rng, depth - 1, vars_)
        return Sqrt(Bin("*", inner, inner))
    if kind < 0.80:
        return Fma(gen_expr(rng, depth - 1, vars_),
                   gen_expr(rng, depth - 1, vars_),
                   gen_expr(rng, depth - 1, vars_))
    if kind < 0.88:
        return Min(gen_expr(rng, depth - 1, vars_), gen_expr(rng, depth - 1, vars_))
    if kind < 0.94:
        return Call(rng.choice(LIBM), [gen_expr(rng, depth - 1, vars_)])
    return Cast(INum(rng.randrange(-100, 100)))


def gen_program(seed: int) -> Module:
    """A random self-contained mini-C module printing its results."""
    rng = random.Random(seed)
    m = Module(fuse_fma=rng.random() < 0.5)
    m.data_array("arr", 8)
    main = m.function("main")
    vars_: list[str] = []
    # seed the array
    main.emit(For("i", INum(0), INum(8), [
        Store("arr", IVar("i"),
              Bin("*", Cast(IVar("i")), Num(rng.choice(CONSTS)))),
    ]))
    n_stmts = rng.randrange(4, 10)
    for s in range(n_stmts):
        name = f"v{s % 4}"
        kind = rng.random()
        if kind < 0.55 or not vars_:
            main.emit(Let(name, gen_expr(rng, 3, vars_)))
            if name not in vars_:
                vars_.append(name)
        elif kind < 0.7:
            main.emit(If(
                FCmp(rng.choice(["<", ">", "<=", ">="]),
                     gen_expr(rng, 2, vars_), gen_expr(rng, 2, vars_)),
                [Let(name, gen_expr(rng, 2, vars_))],
                [Let(name, gen_expr(rng, 2, vars_))],
            ))
            if name not in vars_:
                vars_.append(name)
        elif kind < 0.85:
            main.emit(For("k", INum(0), INum(rng.randrange(2, 6)), [
                Let(name, gen_expr(rng, 2, vars_)),
                Store("arr", IBin("&", IVar("k"), INum(7)),
                      Var(name)),
            ]))
            if name not in vars_:
                vars_.append(name)
        else:
            main.emit(Store("arr", INum(rng.randrange(8)),
                            gen_expr(rng, 2, vars_)))
    for v in vars_:
        main.emit(Print(Var(v)))
    main.emit(Print(Load("arr", INum(rng.randrange(8)))))
    return m


def fuzz_program(seed: int) -> Program:
    """Compile ``gen_program(seed)`` into a runnable image (host
    library installed) — the conformance sweep's program factory."""
    program = gen_program(seed).compile()
    install_host_library(program)
    return program
