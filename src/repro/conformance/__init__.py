"""Conformance matrix + fault injection for the FPVM trap pipeline.

- :mod:`repro.conformance.generators` — seeded mini-C program grammar
  shared with the differential fuzz tests.
- :mod:`repro.conformance.oracle` — run one cell, digest its final
  memory, check the accounting invariants.
- :mod:`repro.conformance.matrix` — the config-axes sweep (NONE / SEQ /
  SHORT / SEQ_SHORT × altmath × patch source × magic traps).
- :mod:`repro.conformance.faults` — injected faults that the VM must
  recover from or fail loudly on with a typed
  :class:`~repro.errors.FPVMFaultError`.
- :mod:`repro.conformance.scheduling` — batched superblock quanta vs
  the seed step-wise scheduler, per thread, bit for bit.
"""

from repro.conformance.generators import fuzz_program, gen_expr, gen_program
from repro.conformance.matrix import (
    Group, MatrixReport, full_plan, render_report, run_group, smoke_plan, sweep,
)
from repro.conformance.faults import (
    SCENARIOS, FaultOutcome, run_all, run_scenario,
)
from repro.conformance.oracle import (
    CellRun, check_invariants, memory_digest, run_cell, run_native,
)
from repro.conformance.scheduling import (
    QUANTA, SchedCheck, process_fingerprint, render_checks, run_schedule,
)
from repro.conformance.scheduling import sweep as sweep_schedules

__all__ = [
    "CellRun", "FaultOutcome", "Group", "MatrixReport", "QUANTA",
    "SCENARIOS", "SchedCheck", "check_invariants", "full_plan",
    "fuzz_program", "gen_expr", "gen_program", "memory_digest",
    "process_fingerprint", "render_checks", "render_report", "run_all",
    "run_cell", "run_group", "run_native", "run_scenario", "run_schedule",
    "smoke_plan", "sweep", "sweep_schedules",
]
