"""Differential trace replay: the oracle that makes chaining safe.

Cross-quantum superblock chaining (machine/uops.py) is a speculative
control-flow optimization of exactly the kind that corrupts state
silently: a mis-followed edge or a skipped invalidation produces a run
that *finishes* with plausible-looking output.  This module pins any
chained execution back to the seed interpreter step by step:

- :class:`TraceRecorder` runs a program under the seed single-step
  interpreter (``uops=False``) and journals every architectural-state
  delta per retired step — register writes, XMM lanes, flags, MXCSR,
  every memory store (hooked at ``Memory.write_bytes``, the funnel all
  interpreter stores pass through), stdout growth, the cycle and trap
  counters, and the halt bit.
- :class:`Replayer` runs the *chained* uop engine against the journal.
  Step parity (each body micro-op, control tail, and fallback counts
  exactly one ``cpu.step()`` equivalent) means the chained CPU's state
  after ``run_quantum(n)`` must equal the journal's state after ``n``
  seed steps — for every ``n``.  The replayer verifies the final state
  and, on mismatch, binary-searches the first divergent step with a
  fresh chained CPU per probe (fresh, so chains re-form naturally
  instead of being suppressed by single-stepping).
- :class:`Divergence` carries the full register/memory/trap context of
  the first divergent step, rendered by :meth:`Divergence.describe`.

:func:`differential_replay` is the pytest-facing entry point: it takes
a zero-arg Program factory (each CPU needs its own image — patches and
data are mutable) and returns a :class:`ReplayReport`.

The same oracle pins the fused trace JIT (machine/tracejit.py):
``differential_replay(..., trace=True)`` makes every probe compile and
run fused traces, so a corrupted generated closure — injected through
``tracejit.CODEGEN_HOOK`` in the conformance tests — is localized to
the exact step the corrupted trace first retires it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU

#: replay journals hold every per-step delta in memory; test programs
#: must finish well under this.
DEFAULT_REPLAY_STEPS = 500_000

_COUNTER_FIELDS = ("cycles", "instruction_count", "fp_trap_count",
                   "bp_trap_count")


@dataclass(frozen=True)
class StepRecord:
    """The architectural-state delta of one seed interpreter step.

    Register/flag/MXCSR entries are present only when the step changed
    them; counters and ``output_len`` are absolute post-step values
    (cheap to compare without folding)."""

    index: int
    rip: int
    gpr: tuple            # ((reg_id, value), ...)
    xmm: tuple            # ((xmm_id, lane, value), ...)
    flags: int | None     # packed, post-step, if changed
    mxcsr: int | None     # post-step, if changed
    stores: tuple         # ((addr, before_bytes, after_bytes), ...)
    counters: tuple       # absolute (cycles, instrs, fp_traps, bp_traps)
    output_len: int
    halted: bool


class Journal:
    """A recorded seed run: initial register state plus one
    :class:`StepRecord` per step, with a folding cursor that
    reconstructs the full expected state after any step count."""

    def __init__(self, initial: dict, records: list[StepRecord],
                 outputs: list[str]) -> None:
        self.initial = initial
        self.records = records
        self.outputs = outputs

    @property
    def total(self) -> int:
        return len(self.records)

    def state_at(self, n: int) -> dict:
        """The seed interpreter's full expected state after ``n`` steps:
        registers, flags, MXCSR, counters, output length, halt bit, and
        the value of every memory byte any store up to step ``n``
        touched."""
        init = self.initial
        gpr = list(init["gpr"])
        xmm = [list(lanes) for lanes in init["xmm"]]
        state = {
            "rip": init["rip"],
            "flags": init["flags"],
            "mxcsr": init["mxcsr"],
            "counters": (0, 0, 0, 0),
            "output_len": 0,
            "halted": False,
        }
        mem: dict[int, int] = {}
        for rec in self.records[:n]:
            for rid, value in rec.gpr:
                gpr[rid] = value
            for xid, lane, value in rec.xmm:
                xmm[xid][lane] = value
            if rec.flags is not None:
                state["flags"] = rec.flags
            if rec.mxcsr is not None:
                state["mxcsr"] = rec.mxcsr
            for addr, _before, after in rec.stores:
                for i, byte in enumerate(after):
                    mem[addr + i] = byte
            state["rip"] = rec.rip
            state["counters"] = rec.counters
            state["output_len"] = rec.output_len
            state["halted"] = rec.halted
        state["gpr"] = gpr
        state["xmm"] = xmm
        state["mem"] = mem
        return state


class TraceRecorder:
    """Runs the seed interpreter step by step, journaling every
    architectural-state delta."""

    def __init__(self, cpu: CPU) -> None:
        if cpu.uops_enabled:
            raise ValueError("the recorder is the seed oracle: build its "
                             "CPU with uops=False")
        self.cpu = cpu

    def record(self, max_steps: int = DEFAULT_REPLAY_STEPS) -> Journal:
        cpu = self.cpu
        regs = cpu.regs
        mem = cpu.mem
        initial = {
            "gpr": list(regs.gpr),
            "xmm": [list(lanes) for lanes in regs.xmm],
            "rip": regs.rip,
            "flags": regs.flags.pack(),
            "mxcsr": regs.mxcsr,
        }
        records: list[StepRecord] = []
        step_stores: list[tuple] = []

        orig_write = mem.write_bytes

        def hooked_write(addr, data):
            before = mem.read_bytes(addr, len(data))
            orig_write(addr, data)
            step_stores.append((addr, before, bytes(data)))

        mem.write_bytes = hooked_write
        try:
            prev_gpr = list(regs.gpr)
            prev_xmm = [list(lanes) for lanes in regs.xmm]
            prev_flags = initial["flags"]
            prev_mxcsr = initial["mxcsr"]
            while not cpu.halted and len(records) < max_steps:
                step_stores.clear()
                cpu.step()
                gpr_delta = tuple(
                    (i, v) for i, v in enumerate(regs.gpr)
                    if v != prev_gpr[i]
                )
                xmm_delta = tuple(
                    (xid, lane, lanes[lane])
                    for xid, lanes in enumerate(regs.xmm)
                    for lane in (0, 1)
                    if lanes[lane] != prev_xmm[xid][lane]
                )
                flags = regs.flags.pack()
                mxcsr = regs.mxcsr
                records.append(StepRecord(
                    index=len(records),
                    rip=regs.rip,
                    gpr=gpr_delta,
                    xmm=xmm_delta,
                    flags=flags if flags != prev_flags else None,
                    mxcsr=mxcsr if mxcsr != prev_mxcsr else None,
                    stores=tuple(step_stores),
                    counters=(cpu.cycles, cpu.instruction_count,
                              cpu.fp_trap_count, cpu.bp_trap_count),
                    output_len=len(cpu.output),
                    halted=cpu.halted,
                ))
                for i, _ in gpr_delta:
                    prev_gpr[i] = regs.gpr[i]
                for xid, lane, v in xmm_delta:
                    prev_xmm[xid][lane] = v
                prev_flags = flags
                prev_mxcsr = mxcsr
        finally:
            del mem.write_bytes  # restore the class method
        if not cpu.halted:
            raise RuntimeError(
                f"recorder exhausted {max_steps} steps before halt — "
                "raise max_steps or shrink the program")
        return Journal(initial, records, list(cpu.output))


@dataclass
class Divergence:
    """The first step at which the chained engine left the journal."""

    step: int                     # 1-based: state after this many steps
    diffs: list = field(default_factory=list)   # (field, expected, actual)
    record: StepRecord | None = None            # the seed step's delta
    error: str | None = None                    # probe exception, if any

    def describe(self) -> str:
        lines = [f"first divergent step: {self.step}"]
        if self.record is not None:
            rec = self.record
            lines.append(
                f"  seed step {rec.index}: rip -> {rec.rip:#x}, "
                f"counters {rec.counters}, "
                f"{len(rec.stores)} store(s), halted={rec.halted}")
            for rid, value in rec.gpr:
                lines.append(f"    seed wrote gpr[{rid}] = {value:#x}")
            for xid, lane, value in rec.xmm:
                lines.append(f"    seed wrote xmm{xid}[{lane}] = {value:#x}")
            for addr, before, after in rec.stores:
                lines.append(
                    f"    seed stored [{addr:#x}] {before.hex()} -> "
                    f"{after.hex()}")
        if self.error is not None:
            lines.append(f"  chained probe raised: {self.error}")
        for name, expected, actual in self.diffs:
            lines.append(f"  {name}: expected {expected!r}, got {actual!r}")
        return "\n".join(lines)


@dataclass
class ReplayReport:
    """Outcome of one differential replay."""

    ok: bool
    steps: int                    # journal length (seed step count)
    probes: int = 0               # chained CPUs spawned
    divergence: Divergence | None = None

    def describe(self) -> str:
        if self.ok:
            return (f"replay ok: {self.steps} steps bit-identical "
                    f"({self.probes} probe(s))")
        return self.divergence.describe()


class Replayer:
    """Checks a chained execution against a :class:`Journal`.

    ``cpu_factory`` must return a *fresh* chained CPU per call (its own
    Program image, kernel attached, ``uops=True``) — each probe replays
    from the start so chains form exactly as they would in production,
    rather than being suppressed by stepping."""

    def __init__(self, journal: Journal, cpu_factory) -> None:
        self.journal = journal
        self.cpu_factory = cpu_factory
        self.probes = 0

    # ------------------------------------------------------------ probes
    def _probe(self, n: int) -> tuple[list, str | None]:
        """Run a fresh chained CPU for ``n`` budget steps and diff its
        state against the journal's state after the same count.  Returns
        (diffs, error)."""
        self.probes += 1
        cpu = self.cpu_factory()
        try:
            taken = cpu.run_quantum(n)
        except Exception as exc:  # engine bug: still localizable
            return [("execution", "clean run", type(exc).__name__)], repr(exc)
        expected_taken = min(n, self.journal.total)
        if taken != expected_taken:
            return [("steps_taken", expected_taken, taken)], None
        return self._diff(cpu, self.journal.state_at(taken)), None

    def _diff(self, cpu, state: dict) -> list:
        regs = cpu.regs
        diffs = []
        if regs.rip != state["rip"]:
            diffs.append(("rip", hex(state["rip"]), hex(regs.rip)))
        for rid, expected in enumerate(state["gpr"]):
            if regs.gpr[rid] != expected:
                diffs.append((f"gpr[{rid}]", hex(expected),
                              hex(regs.gpr[rid])))
        for xid, lanes in enumerate(state["xmm"]):
            for lane in (0, 1):
                if regs.xmm[xid][lane] != lanes[lane]:
                    diffs.append((f"xmm{xid}[{lane}]", hex(lanes[lane]),
                                  hex(regs.xmm[xid][lane])))
        if regs.flags.pack() != state["flags"]:
            diffs.append(("flags", state["flags"], regs.flags.pack()))
        if regs.mxcsr != state["mxcsr"]:
            diffs.append(("mxcsr", hex(state["mxcsr"]), hex(regs.mxcsr)))
        actual_counters = (cpu.cycles, cpu.instruction_count,
                           cpu.fp_trap_count, cpu.bp_trap_count)
        for name, expected, actual in zip(_COUNTER_FIELDS,
                                          state["counters"],
                                          actual_counters):
            if expected != actual:
                diffs.append((name, expected, actual))
        expected_out = self.journal.outputs[:state["output_len"]]
        if list(cpu.output) != expected_out:
            diffs.append(("output", tuple(expected_out),
                          tuple(cpu.output)))
        if cpu.halted != state["halted"]:
            diffs.append(("halted", state["halted"], cpu.halted))
        mem = cpu.mem
        for addr, byte in state["mem"].items():
            actual = mem.read_bytes(addr, 1)[0]
            if actual != byte:
                diffs.append((f"mem[{addr:#x}]", byte, actual))
        return diffs

    # -------------------------------------------------------------- run
    def run(self) -> ReplayReport:
        """Full-run check, then binary-search localization on mismatch.

        A probe at ``n`` asks: does an ``n``-budget chained dispatch
        leave the machine bit-identical to ``n`` seed steps?  The
        search returns an adjacent pair — budget ``step - 1`` verified
        identical, budget ``step`` divergent — so the reported step is
        the exact boundary where the chained engine first disagrees
        with the seed.  (Which execution tier retires an instruction
        depends on the budget — a body only runs as a superblock when
        it fits — so for a corruption that later *washes out* of the
        architectural state the pair is exact but not necessarily
        globally minimal; persistent corruptions, the failure mode of
        real chaining bugs, are monotone and the boundary is global.)
        """
        journal = self.journal
        total = journal.total
        diffs, error = self._probe(total)
        if not diffs:
            return ReplayReport(ok=True, steps=total, probes=self.probes)
        lo, hi = 0, total               # lo: known-good, hi: known-bad
        hi_diffs, hi_error = diffs, error
        while hi - lo > 1:
            mid = (lo + hi) // 2
            mid_diffs, mid_error = self._probe(mid)
            if mid_diffs:
                hi, hi_diffs, hi_error = mid, mid_diffs, mid_error
            else:
                lo = mid
        divergence = Divergence(
            step=hi,
            diffs=hi_diffs,
            record=journal.records[hi - 1] if hi >= 1 else None,
            error=hi_error,
        )
        return ReplayReport(ok=False, steps=total, probes=self.probes,
                            divergence=divergence)


# -------------------------------------------------------------- harness
def _make_cpu(program, config: FPVMConfig | None, uops: bool,
              chain: bool, trace: bool | None = None,
              trace_threshold: int | None = None) -> CPU:
    cpu = CPU(program, uops=uops, chain=chain, trace=trace)
    if trace_threshold is not None:
        cpu.trace_stabilize_threshold = trace_threshold
    kernel = LinuxKernel()
    cpu.kernel = kernel
    if config is not None:
        FPVM(config).attach(cpu, kernel)
        # attach() applies the config's pipeline choice; the replay
        # contract (seed recorder vs chained replayer) overrides it.
        cpu.uops_enabled = uops
    return cpu


def differential_replay(
    program_factory,
    config: FPVMConfig | None = None,
    max_steps: int = DEFAULT_REPLAY_STEPS,
    chain: bool = True,
    trace: bool | None = None,
    trace_threshold: int | None = None,
) -> ReplayReport:
    """Record ``program_factory()`` under the seed interpreter, then
    replay the chained engine against the journal.  ``config`` attaches
    an FPVM (same config both sides); ``chain=False`` turns the check on
    the unchained uop engine instead (isolation aid); ``trace=True``
    pins the fused trace-JIT tier on so probes compile and run traces
    (``None`` leaves the ``FPVM_TRACEJIT`` default), and
    ``trace_threshold`` lowers the stabilization threshold so even
    short fuzz loops fuse."""
    recorder = TraceRecorder(
        _make_cpu(program_factory(), config, uops=False, chain=False,
                  trace=False))
    journal = recorder.record(max_steps=max_steps)

    def chained_factory():
        return _make_cpu(program_factory(), config, uops=True, chain=chain,
                         trace=trace, trace_threshold=trace_threshold)

    return Replayer(journal, chained_factory).run()
