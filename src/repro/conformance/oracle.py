"""The differential oracle: run one (program, config) cell and collect
everything the conformance matrix compares.

Three kinds of evidence per cell:

- **stdout** — the program's printed output, compared bit-for-bit
  (prints demote, so every backend must agree with itself across
  configs, and Boxed IEEE must agree with native).
- **final-memory digest** — a SHA-256 over the data segment with any
  still-boxed words *purely* demoted first (no charges, no telemetry),
  so runs that leave boxes in memory at different GC phases still
  digest equal when they computed equal values.
- **ledger/telemetry invariants** — exact accounting identities that
  must hold for any clean run of any configuration (see
  :func:`check_invariants`).
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field

from repro.core import nanbox
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.machine.program import PatchKind, Program

#: generous per-cell step budget — every plan program finishes well
#: under this; hitting it means a livelock the fault layer should have
#: caught.
DEFAULT_MAX_STEPS = 5_000_000


@dataclass
class CellRun:
    """One executed cell: a program under one config (or native)."""

    config_name: str
    output: tuple[str, ...]
    memory_digest: str
    cycles: int
    instructions: int
    invariant_failures: list[str] = field(default_factory=list)
    telemetry: object = None
    ledger: dict = field(default_factory=dict)


def run_native(program: Program, max_steps: int = DEFAULT_MAX_STEPS) -> CellRun:
    """The oracle's ground truth: the same image with no FPVM attached."""
    cpu = CPU(program)
    cpu.kernel = LinuxKernel()
    cpu.run(max_steps=max_steps)
    return CellRun(
        config_name="native",
        output=tuple(cpu.output),
        memory_digest=memory_digest(cpu),
        cycles=cpu.cycles,
        instructions=cpu.instruction_count,
    )


def run_cell(
    program: Program,
    config: FPVMConfig,
    config_name: str = "",
    max_steps: int = DEFAULT_MAX_STEPS,
) -> CellRun:
    """Attach FPVM with ``config``, run to completion, verify the
    accounting invariants, and capture the comparable state."""
    cpu = CPU(program)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    cpu.run(max_steps=max_steps)
    return CellRun(
        config_name=config_name,
        output=tuple(cpu.output),
        memory_digest=memory_digest(cpu, vm),
        cycles=cpu.cycles,
        instructions=cpu.instruction_count,
        invariant_failures=check_invariants(cpu, vm),
        telemetry=vm.telemetry,
        ledger=vm.ledger.snapshot(),
    )


# -------------------------------------------------------------- digest
def _pure_demote(vm, bits: int) -> int:
    """Collapse an owned boxed pattern to plain binary64 without
    touching charges or telemetry (identity on everything else)."""
    if vm is not None and nanbox.is_boxed(bits):
        ptr, negated = nanbox.unbox(bits)
        if vm.allocator.owns(ptr):
            out = vm.altmath.demote(vm.allocator.load(ptr))
            if negated:
                out ^= 1 << 63
            return out
    return bits


def memory_digest(cpu, vm=None) -> str:
    """SHA-256 of the final data segment, word by word, with owned
    boxed values demoted through the run's own altmath system.

    Boxed words differ across runs even for equal values (box pointers
    depend on allocation/GC history), so the raw bytes can never be
    compared; the demoted view can.
    """
    program = cpu.program
    h = hashlib.sha256()
    addr = program.data_base
    end = addr + len(program.data)
    while addr + 8 <= end:
        bits = _pure_demote(vm, cpu.mem.read_u64(addr))
        h.update(struct.pack("<Q", bits))
        addr += 8
    return h.hexdigest()


# ---------------------------------------------------------- invariants
def check_invariants(cpu, vm) -> list[str]:
    """Exact accounting identities for a clean (fault-free) run.

    Every violation is returned as a human-readable string; an empty
    list means the CycleLedger, Telemetry, and CPU counters form a
    closed, consistent account of the run.
    """
    failures: list[str] = []
    t = vm.telemetry
    ledger = vm.ledger

    # 1. Cycle closure: every simulated cycle is either guest work
    #    (retired instruction + host-library body costs) or an overhead
    #    cycle recorded in exactly one ledger category.
    expect = cpu.work_cycles + ledger.total()
    if cpu.cycles != expect:
        failures.append(
            f"cycle closure: cpu.cycles={cpu.cycles} != "
            f"work_cycles({cpu.work_cycles}) + ledger({ledger.total()})"
        )

    # 2. Every handled trap came through exactly one delivery path.
    if t.traps != t.signal_traps + t.short_circuit_traps:
        failures.append(
            f"trap paths: traps={t.traps} != signal({t.signal_traps}) "
            f"+ short_circuit({t.short_circuit_traps})"
        )

    # 3. The CPU and FPVM agree on how many #XF traps occurred (no
    #    spurious deliveries happen without fault injection).
    if cpu.fp_trap_count != t.traps:
        failures.append(
            f"trap count: cpu.fp_trap_count={cpu.fp_trap_count} != "
            f"telemetry.traps={t.traps}"
        )
    if t.spurious_traps:
        failures.append(f"{t.spurious_traps} spurious deliveries in a clean run")

    # 4. Correctness events match the patch sites that fired: every
    #    magic-trampoline invocation and every int3 breakpoint trap runs
    #    the demotion handler exactly once.
    tramp_calls = sum(
        p.trampoline.call_count
        for p in vm.program.patches.values()
        if p.kind is PatchKind.MAGIC_CALL
    )
    if t.corr_events != tramp_calls + cpu.bp_trap_count:
        failures.append(
            f"corr events: {t.corr_events} != trampoline calls "
            f"({tramp_calls}) + int3 traps ({cpu.bp_trap_count})"
        )

    # 5. Foreign-call events match the wrapper counters.
    wrapper_calls = ledger.counters["fcall_traps"] + ledger.counters["libm_calls"]
    if t.fcall_events != wrapper_calls:
        failures.append(
            f"fcall events: {t.fcall_events} != wrapper invocations "
            f"({wrapper_calls})"
        )

    # 6. The emulation counters agree between telemetry and ledger.
    if t.emulated_instructions != ledger.counters["emulated_instructions"]:
        failures.append(
            f"emulated: telemetry {t.emulated_instructions} != "
            f"ledger {ledger.counters['emulated_instructions']}"
        )

    # 7. Decode traffic is conserved: hits + misses as seen by the
    #    cache itself.
    if (t.decode_hits, t.decode_misses) != (vm.decode_cache.hits, vm.decode_cache.misses):
        failures.append(
            f"decode counters: telemetry ({t.decode_hits}, {t.decode_misses}) "
            f"!= cache ({vm.decode_cache.hits}, {vm.decode_cache.misses})"
        )
    return failures
