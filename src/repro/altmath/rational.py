"""Exact rational arithmetic (slash-arithmetic-inspired; see the
paper's related-work discussion of finite-precision rational systems).

Values are exact :class:`fractions.Fraction` for +, -, *, /; square
roots and transcendentals fall back to high-precision approximation
(so the system is exact on the field operations and faithful
elsewhere).  Special values (NaN, +/-inf, signed zero) are carried as
tagged sentinels.  Costs grow with operand size in real slash systems;
here a flat model calibrated to "much more expensive than doubles,
cheaper than 200-bit MPFR transcendentals" is used.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.altmath.base import AltMathCosts, AltMathSystem, register_altmath
from repro.fpu import bits as B


@dataclass(frozen=True)
class RationalValue:
    """Either an exact rational or a special (nan/+inf/-inf/-0)."""

    value: Fraction | None
    special: str | None = None  # "nan", "+inf", "-inf", "-0"

    @classmethod
    def nan(cls) -> "RationalValue":
        return cls(None, "nan")

    @classmethod
    def inf(cls, negative: bool) -> "RationalValue":
        return cls(None, "-inf" if negative else "+inf")

    def is_nan(self) -> bool:
        return self.special == "nan"

    def is_inf(self) -> bool:
        return self.special in ("+inf", "-inf")

    def numeric(self) -> Fraction:
        if self.special == "-0":
            return Fraction(0)
        if self.value is None:
            raise ValueError("special value has no numeric")
        return self.value


@register_altmath
class RationalSystem(AltMathSystem):
    """``max_denominator=None`` gives exact (unbounded) rationals;
    setting it emulates *finite-precision* slash arithmetic (Matula &
    Kornerup): every result is rounded to the best rational with a
    bounded denominator, keeping operand sizes — and costs — bounded.
    """

    name = "rational"
    costs = AltMathCosts(
        promote=90,
        demote=110,
        box=95,
        compare=60,
        convert=70,
        ops={"add": 220, "sub": 220, "mul": 260, "div": 260, "sqrt": 900,
             "min": 60, "max": 60, "neg": 20, "abs": 20},
        libm=1500,
    )

    #: guard precision (bits) for irrational fallbacks.
    SQRT_PRECISION = 128

    def __init__(self, max_denominator: int | None = None):
        if max_denominator is not None and max_denominator < 1:
            raise ValueError("max_denominator must be positive")
        self.max_denominator = max_denominator

    def _bound(self, value: RationalValue) -> RationalValue:
        if (
            self.max_denominator is None
            or value.special is not None
            or value.value.denominator <= self.max_denominator
        ):
            return value
        return RationalValue(value.value.limit_denominator(self.max_denominator))

    def promote(self, bits: int) -> RationalValue:
        if B.is_nan(bits):
            return RationalValue.nan()
        if B.is_inf(bits):
            return RationalValue.inf(B.is_negative(bits))
        if bits == B.NEG_ZERO_BITS:
            return RationalValue(None, "-0")
        return RationalValue(B.bits_to_fraction(bits))

    def demote(self, value: RationalValue) -> int:
        if value.special == "nan":
            return B.CANONICAL_QNAN
        if value.special == "+inf":
            return B.POS_INF_BITS
        if value.special == "-inf":
            return B.NEG_INF_BITS
        if value.special == "-0":
            return B.NEG_ZERO_BITS
        bits_, *_ = B.fraction_to_bits_rne(value.value)
        return bits_

    def from_i64(self, value: int) -> RationalValue:
        value &= 0xFFFF_FFFF_FFFF_FFFF
        if value >= 1 << 63:
            value -= 1 << 64
        return RationalValue(Fraction(value))

    def to_i64(self, value: RationalValue, truncate: bool = True) -> int:
        if value.special in ("nan", "+inf", "-inf"):
            return 0x8000_0000_0000_0000
        f = value.numeric()
        t = int(f) if truncate else round(f)
        if not (-(2**63) <= t <= 2**63 - 1):
            return 0x8000_0000_0000_0000
        return t & 0xFFFF_FFFF_FFFF_FFFF

    def binary(self, op: str, a: RationalValue, b: RationalValue) -> RationalValue:
        if a.is_nan() or b.is_nan():
            return RationalValue.nan()
        if op in ("min", "max"):
            c = self.compare(a, b)
            if c == 0 or c is None:
                return b
            if op == "min":
                return a if c < 0 else b
            return a if c > 0 else b
        if a.is_inf() or b.is_inf():
            return self._binary_inf(op, a, b)
        fa, fb = a.numeric(), b.numeric()
        if op == "add":
            return self._bound(RationalValue(fa + fb))
        if op == "sub":
            return self._bound(RationalValue(fa - fb))
        if op == "mul":
            return self._bound(RationalValue(fa * fb))
        if op == "div":
            if fb == 0:
                if fa == 0:
                    return RationalValue.nan()
                neg = (fa < 0) ^ (b.special == "-0")
                return RationalValue.inf(neg)
            return self._bound(RationalValue(fa / fb))
        raise KeyError(op)

    def _binary_inf(self, op: str, a: RationalValue, b: RationalValue) -> RationalValue:
        # Delegate the (rare) infinity algebra to host doubles.
        fa = self._to_host(a)
        fb = self._to_host(b)
        try:
            if op == "add":
                r = fa + fb
            elif op == "sub":
                r = fa - fb
            elif op == "mul":
                r = fa * fb
            else:
                r = fa / fb if fb != 0 else math.copysign(math.inf, fa) * math.copysign(1.0, fb)
        except (OverflowError, ZeroDivisionError):
            r = math.nan
        return self.promote(B.float_to_bits(r))

    @staticmethod
    def _to_host(v: RationalValue) -> float:
        if v.special == "+inf":
            return math.inf
        if v.special == "-inf":
            return -math.inf
        if v.special == "-0":
            return -0.0
        return float(v.value)

    def unary(self, op: str, a: RationalValue) -> RationalValue:
        if a.is_nan():
            return a
        if op == "neg":
            if a.special == "+inf":
                return RationalValue.inf(True)
            if a.special == "-inf":
                return RationalValue.inf(False)
            if a.special == "-0":
                return RationalValue(Fraction(0))
            if a.value == 0:
                return RationalValue(None, "-0")
            return RationalValue(-a.value)
        if op == "abs":
            if a.is_inf():
                return RationalValue.inf(False)
            if a.special == "-0":
                return RationalValue(Fraction(0))
            return RationalValue(abs(a.value))
        if op == "sqrt":
            if a.special == "+inf":
                return a
            if a.special in ("-inf",):
                return RationalValue.nan()
            if a.special == "-0":
                return a
            f = a.numeric()
            if f < 0:
                return RationalValue.nan()
            if f == 0:
                return RationalValue(Fraction(0))
            root = self._sqrt_frac(f)
            return self._bound(RationalValue(root))
        raise KeyError(op)

    def _sqrt_frac(self, f: Fraction) -> Fraction:
        # Exact when f is a perfect square of a rational; else
        # approximate to SQRT_PRECISION bits.
        num_r = math.isqrt(f.numerator)
        den_r = math.isqrt(f.denominator)
        if num_r * num_r == f.numerator and den_r * den_r == f.denominator:
            return Fraction(num_r, den_r)
        prec = self.SQRT_PRECISION
        scale = 1 << (2 * prec)
        n = (f.numerator * scale) // f.denominator
        return Fraction(math.isqrt(n), 1 << prec)

    def compare(self, a: RationalValue, b: RationalValue) -> int | None:
        if a.is_nan() or b.is_nan():
            return None
        ka = self._order_key(a)
        kb = self._order_key(b)
        return -1 if ka < kb else (0 if ka == kb else 1)

    @staticmethod
    def _order_key(v: RationalValue):
        big = Fraction(1 << 20000)
        if v.special == "+inf":
            return big
        if v.special == "-inf":
            return -big
        if v.special == "-0":
            return Fraction(0)
        return v.value

    def is_nan_value(self, value: RationalValue) -> bool:
        return value.is_nan()
