"""Logarithmic number system (LNS) arithmetic.

The paper's related work cites Arnold et al., "Redundant Logarithmic
Arithmetic" — LNS represents a value by the fixed-point base-2
logarithm of its magnitude plus a sign, making multiplication,
division, square root and powers *exact* (integer add/sub/shift of
exponents) while addition and subtraction need the Gaussian-logarithm
correction

    log2(|a| + |b|) = max + log2(1 + 2^-(|max - min|))

evaluated here at high precision (a real LNS uses correction tables;
the table-lookup cost is what the cost model charges).

Representation: ``LNSValue(sign, log2_magnitude)`` with the log carried
as a ``Fraction`` quantized to ``frac_bits`` fractional bits — a
classic sign/logarithm fixed-point format.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.altmath.base import AltMathCosts, AltMathSystem, register_altmath
from repro.fpu import bits as B


@dataclass(frozen=True)
class LNSValue:
    """sign in {+1, -1}; log2 of the magnitude; zero/nan/inf flags."""

    sign: int
    log2: Fraction
    kind: str = "finite"  # "finite" | "zero" | "inf" | "nan"

    @classmethod
    def nan(cls) -> "LNSValue":
        return cls(1, Fraction(0), "nan")

    @classmethod
    def inf(cls, sign: int) -> "LNSValue":
        return cls(sign, Fraction(0), "inf")

    @classmethod
    def zero(cls, sign: int = 1) -> "LNSValue":
        return cls(sign, Fraction(0), "zero")

    def is_nan(self) -> bool:
        return self.kind == "nan"


@register_altmath
class LNSSystem(AltMathSystem):
    """``frac_bits`` controls the fixed-point log resolution: 52 makes
    multiplicative accuracy comparable to binary64 while additive
    accuracy depends on the correction evaluation."""

    name = "lns"

    def __init__(self, frac_bits: int = 52):
        if frac_bits < 4:
            raise ValueError("frac_bits must be >= 4")
        self.frac_bits = frac_bits
        self._quantum = Fraction(1, 1 << frac_bits)
        self.costs = AltMathCosts(
            promote=150,   # needs a log2 evaluation
            demote=140,    # needs a 2^x evaluation
            box=95,
            compare=25,    # sign + integer compare of logs: cheap
            convert=130,
            ops={
                # The LNS selling point: multiplicative ops are adds.
                "mul": 30, "div": 30, "sqrt": 20,
                # Additive ops pay the Gaussian-log correction lookup.
                "add": 260, "sub": 300,
                "min": 25, "max": 25, "neg": 8, "abs": 8,
            },
            libm=700,
        )

    # ------------------------------------------------------- conversions
    def _quantize(self, log2: Fraction) -> Fraction:
        # round-to-nearest multiple of the fixed-point quantum
        n = round(log2 / self._quantum)
        return n * self._quantum

    def promote(self, bits: int) -> LNSValue:
        if B.is_nan(bits):
            return LNSValue.nan()
        if B.is_inf(bits):
            return LNSValue.inf(-1 if B.is_negative(bits) else 1)
        if B.is_zero(bits):
            return LNSValue.zero(-1 if B.is_negative(bits) else 1)
        frac = B.bits_to_fraction(bits)
        sign = -1 if frac < 0 else 1
        return LNSValue(sign, self._log2(abs(frac)))

    def _log2(self, mag: Fraction) -> Fraction:
        # Exact integer part; fractional part from the high-precision
        # natural log of the normalized mantissa.
        e = B._ilog2(mag)
        mant = mag / (Fraction(2) ** e)  # in [1, 2)
        frac_part = Fraction(math.log2(float(mant)))
        return self._quantize(e + frac_part)

    def demote(self, value: LNSValue) -> int:
        if value.kind == "nan":
            return B.CANONICAL_QNAN
        if value.kind == "inf":
            return B.NEG_INF_BITS if value.sign < 0 else B.POS_INF_BITS
        if value.kind == "zero":
            return B.NEG_ZERO_BITS if value.sign < 0 else B.POS_ZERO_BITS
        log2 = value.log2
        e = math.floor(log2)
        frac = float(log2 - e)
        mant = 2.0 ** frac
        try:
            mag = math.ldexp(mant, e)
        except OverflowError:
            mag = math.inf
        return B.float_to_bits(value.sign * mag)

    def from_i64(self, value: int) -> LNSValue:
        value &= 0xFFFF_FFFF_FFFF_FFFF
        if value >= 1 << 63:
            value -= 1 << 64
        if value == 0:
            return LNSValue.zero()
        sign = -1 if value < 0 else 1
        return LNSValue(sign, self._log2(Fraction(abs(value))))

    def to_i64(self, value: LNSValue, truncate: bool = True) -> int:
        bits = self.demote(value)
        from repro.machine import hostfp

        return hostfp.native_fp("cvttsd2si" if truncate else "cvtsd2si", bits)

    # -------------------------------------------------------- arithmetic
    def binary(self, op: str, a: LNSValue, b: LNSValue) -> LNSValue:
        if a.is_nan() or b.is_nan():
            return LNSValue.nan()
        if op == "mul":
            return self._mul(a, b)
        if op == "div":
            return self._div(a, b)
        if op == "add":
            return self._addsub(a, b, subtract=False)
        if op == "sub":
            return self._addsub(a, b, subtract=True)
        if op in ("min", "max"):
            c = self.compare(a, b)
            if c == 0 or c is None:
                return b
            if op == "min":
                return a if c < 0 else b
            return a if c > 0 else b
        raise KeyError(op)

    def _mul(self, a: LNSValue, b: LNSValue) -> LNSValue:
        sign = a.sign * b.sign
        if a.kind == "inf" or b.kind == "inf":
            if a.kind == "zero" or b.kind == "zero":
                return LNSValue.nan()
            return LNSValue.inf(sign)
        if a.kind == "zero" or b.kind == "zero":
            return LNSValue.zero(sign)
        return LNSValue(sign, self._quantize(a.log2 + b.log2))

    def _div(self, a: LNSValue, b: LNSValue) -> LNSValue:
        sign = a.sign * b.sign
        if a.kind == "inf":
            return LNSValue.nan() if b.kind == "inf" else LNSValue.inf(sign)
        if b.kind == "inf":
            return LNSValue.zero(sign)
        if b.kind == "zero":
            return LNSValue.nan() if a.kind == "zero" else LNSValue.inf(sign)
        if a.kind == "zero":
            return LNSValue.zero(sign)
        return LNSValue(sign, self._quantize(a.log2 - b.log2))

    def _addsub(self, a: LNSValue, b: LNSValue, subtract: bool) -> LNSValue:
        if subtract:
            b = LNSValue(-b.sign, b.log2, b.kind)
        if a.kind == "inf" or b.kind == "inf":
            if a.kind == "inf" and b.kind == "inf":
                if a.sign != b.sign:
                    return LNSValue.nan()
                return a
            return a if a.kind == "inf" else b
        if a.kind == "zero":
            return b
        if b.kind == "zero":
            return a
        # Order so |a| >= |b|.
        if a.log2 < b.log2:
            a, b = b, a
        d = a.log2 - b.log2  # >= 0
        if a.sign == b.sign:
            # log2(|a|+|b|) = log2|a| + log2(1 + 2^-d)
            corr = math.log2(1.0 + 2.0 ** -float(d))
            return LNSValue(a.sign, self._quantize(a.log2 + Fraction(corr)))
        # Opposite signs: |a| - |b|.
        if d == 0:
            return LNSValue.zero()
        x = 1.0 - 2.0 ** -float(d)
        corr = math.log2(x)
        return LNSValue(a.sign, self._quantize(a.log2 + Fraction(corr)))

    def unary(self, op: str, a: LNSValue) -> LNSValue:
        if a.is_nan():
            return a
        if op == "neg":
            return LNSValue(-a.sign, a.log2, a.kind)
        if op == "abs":
            return LNSValue(1, a.log2, a.kind)
        if op == "sqrt":
            if a.kind == "zero":
                return a
            if a.sign < 0:
                return LNSValue.nan()
            if a.kind == "inf":
                return a
            # Exact in LNS: halve the exponent.
            return LNSValue(1, self._quantize(a.log2 / 2))
        raise KeyError(op)

    def compare(self, a: LNSValue, b: LNSValue) -> int | None:
        if a.is_nan() or b.is_nan():
            return None
        ka = self._order_key(a)
        kb = self._order_key(b)
        return -1 if ka < kb else (0 if ka == kb else 1)

    @staticmethod
    def _order_key(v: LNSValue):
        big = Fraction(1 << 20000)
        if v.kind == "zero":
            return Fraction(0)
        if v.kind == "inf":
            return big * v.sign
        # Sign-magnitude ordering: log2 + big is always positive, so the
        # sign factor orders negatives below positives correctly.
        return v.sign * (v.log2 + big)

    def is_nan_value(self, value: LNSValue) -> bool:
        return value.is_nan()
