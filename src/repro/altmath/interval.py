"""Interval arithmetic with outward directed rounding.

Each value is a closed interval [lo, hi] of binary64 endpoints that is
guaranteed to contain the exact mathematical result.  Operations
compute candidate endpoints exactly (rationals) and round lo toward
-inf and hi toward +inf.  An "alternative NaN" is the empty/undefined
interval (either endpoint NaN).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.altmath.base import AltMathCosts, AltMathSystem, register_altmath
from repro.fpu import bits as B


@dataclass(frozen=True)
class Interval:
    lo: float
    hi: float

    @property
    def undefined(self) -> bool:
        return math.isnan(self.lo) or math.isnan(self.hi)

    @property
    def width(self) -> float:
        return self.hi - self.lo

    def midpoint(self) -> float:
        if self.undefined:
            return math.nan
        if math.isinf(self.lo) and math.isinf(self.hi):
            return math.nan if self.lo != self.hi else self.lo
        if math.isinf(self.lo):
            return self.lo
        if math.isinf(self.hi):
            return self.hi
        mid = self.lo + (self.hi - self.lo) / 2.0
        return mid

    def __contains__(self, x: float) -> bool:
        return not self.undefined and self.lo <= x <= self.hi


_UNDEFINED = Interval(math.nan, math.nan)


def _round_down(exact: Fraction) -> float:
    """Largest binary64 <= exact (round toward -infinity)."""
    bits_, _, _, _ = B.fraction_to_bits_rne(exact)
    x = B.bits_to_float(bits_)
    if math.isinf(x):
        # RNE overflowed; +inf must come back to maxfinite for a lower bound.
        return math.nextafter(x, -math.inf) if x > 0 else x
    if Fraction(x) > exact:
        return math.nextafter(x, -math.inf)
    return x


def _round_up(exact: Fraction) -> float:
    """Smallest binary64 >= exact (round toward +infinity)."""
    bits_, _, _, _ = B.fraction_to_bits_rne(exact)
    x = B.bits_to_float(bits_)
    if math.isinf(x):
        return math.nextafter(x, math.inf) if x < 0 else x
    if Fraction(x) < exact:
        return math.nextafter(x, math.inf)
    return x


def _from_exact(lo: Fraction, hi: Fraction) -> Interval:
    return Interval(_round_down(lo), _round_up(hi))


@register_altmath
class IntervalSystem(AltMathSystem):
    name = "interval"
    costs = AltMathCosts(
        promote=70,
        demote=40,
        box=95,
        compare=40,
        convert=60,
        ops={"add": 90, "sub": 90, "mul": 160, "div": 260, "sqrt": 300,
             "min": 50, "max": 50, "neg": 20, "abs": 30},
        libm=600,
    )

    def promote(self, bits: int) -> Interval:
        x = B.bits_to_float(bits)
        if math.isnan(x):
            return _UNDEFINED
        return Interval(x, x)

    def demote(self, value: Interval) -> int:
        return B.float_to_bits(value.midpoint())

    def from_i64(self, value: int) -> Interval:
        value &= 0xFFFF_FFFF_FFFF_FFFF
        if value >= 1 << 63:
            value -= 1 << 64
        return _from_exact(Fraction(value), Fraction(value))

    def to_i64(self, value: Interval, truncate: bool = True) -> int:
        mid = value.midpoint()
        if math.isnan(mid) or math.isinf(mid):
            return 0x8000_0000_0000_0000
        t = math.trunc(mid) if truncate else round(mid)
        if not (-(2**63) <= t <= 2**63 - 1):
            return 0x8000_0000_0000_0000
        return t & 0xFFFF_FFFF_FFFF_FFFF

    def binary(self, op: str, a: Interval, b: Interval) -> Interval:
        if a.undefined or b.undefined:
            return _UNDEFINED
        if op in ("min", "max"):
            c = self.compare(a, b)
            if c == 0 or c is None:
                return b
            if op == "min":
                return a if c < 0 else b
            return a if c > 0 else b
        if not all(map(math.isfinite, (a.lo, a.hi, b.lo, b.hi))):
            return self._binary_inf(op, a, b)
        alo, ahi = Fraction(a.lo), Fraction(a.hi)
        blo, bhi = Fraction(b.lo), Fraction(b.hi)
        if op == "add":
            return _from_exact(alo + blo, ahi + bhi)
        if op == "sub":
            return _from_exact(alo - bhi, ahi - blo)
        if op == "mul":
            products = [alo * blo, alo * bhi, ahi * blo, ahi * bhi]
            return _from_exact(min(products), max(products))
        if op == "div":
            if blo <= 0 <= bhi:
                # Divisor interval straddles (or is) zero: the true
                # quotient set is unbounded — return the whole line,
                # or undefined for the 0/0 case.
                if blo == bhi == 0:
                    return _UNDEFINED
                return Interval(-math.inf, math.inf)
            quotients = [alo / blo, alo / bhi, ahi / blo, ahi / bhi]
            return _from_exact(min(quotients), max(quotients))
        raise KeyError(op)

    def _binary_inf(self, op: str, a: Interval, b: Interval) -> Interval:
        """Conservative handling for infinite endpoints: compute with
        host floats using the four-corner rule; inf arithmetic is exact
        so directed rounding is unnecessary except for finite corners,
        where this over-approximates by one ulp at most."""
        if op == "add":
            lo, hi = a.lo + b.lo, a.hi + b.hi
        elif op == "sub":
            lo, hi = a.lo - b.hi, a.hi - b.lo
        elif op in ("mul", "div"):
            corners = []
            for x in (a.lo, a.hi):
                for y in (b.lo, b.hi):
                    try:
                        v = x * y if op == "mul" else (x / y if y != 0 else math.nan)
                    except (OverflowError, ZeroDivisionError):
                        v = math.nan
                    corners.append(v)
            if any(map(math.isnan, corners)):
                return _UNDEFINED
            lo, hi = min(corners), max(corners)
            lo = math.nextafter(lo, -math.inf) if math.isfinite(lo) else lo
            hi = math.nextafter(hi, math.inf) if math.isfinite(hi) else hi
        else:
            raise KeyError(op)
        if math.isnan(lo) or math.isnan(hi):
            return _UNDEFINED
        return Interval(lo, hi)

    def unary(self, op: str, a: Interval) -> Interval:
        if a.undefined:
            return _UNDEFINED
        if op == "neg":
            return Interval(-a.hi, -a.lo)
        if op == "abs":
            if a.lo >= 0:
                return a
            if a.hi <= 0:
                return Interval(-a.hi, -a.lo)
            return Interval(0.0, max(-a.lo, a.hi))
        if op == "sqrt":
            if a.hi < 0:
                return _UNDEFINED
            lo = max(a.lo, 0.0)
            lo_r = math.sqrt(lo)
            hi_r = math.sqrt(a.hi) if a.hi >= 0 else math.nan
            # Outward-correct: sqrt is correctly rounded, so nudge.
            if lo_r * lo_r > lo:
                lo_r = math.nextafter(lo_r, -math.inf)
            if math.isfinite(hi_r) and hi_r * hi_r < a.hi:
                hi_r = math.nextafter(hi_r, math.inf)
            return Interval(lo_r, hi_r)
        raise KeyError(op)

    def compare(self, a: Interval, b: Interval) -> int | None:
        if a.undefined or b.undefined:
            return None
        # Certain orderings only; overlapping intervals compare by
        # midpoint (FPVM needs a total-ish answer for branches).
        if a.hi < b.lo:
            return -1
        if a.lo > b.hi:
            return 1
        ma, mb = a.midpoint(), b.midpoint()
        if ma == mb:
            return 0
        return -1 if ma < mb else 1

    def is_nan_value(self, value: Interval) -> bool:
        return value.undefined
