"""Alternative arithmetic systems (§2.1 "Alternative arithmetic system
interface").

FPVM talks to the arithmetic system through a narrow, swappable
interface.  The paper evaluates two:

- **Boxed IEEE** — hardware doubles boxed on the heap behind NaN-boxed
  pointers.  The *fastest* system, hence the worst case for exposing
  virtualization overhead (used for Figures 1, 4-10).
- **MPFR** at 200 bits (Figures 11-13) — here the from-scratch
  :class:`~repro.fpu.softfloat.BigFloat`.

Plus the systems the introduction motivates: posits, interval
arithmetic, and rational arithmetic.
"""

from repro.altmath.base import AltMathCosts, AltMathSystem, get_altmath, register_altmath
from repro.altmath.boxed_ieee import BoxedIEEE
from repro.altmath.mpfr import MPFRSystem
from repro.altmath.posit import PositSystem, Posit
from repro.altmath.interval import IntervalSystem
from repro.altmath.rational import RationalSystem
from repro.altmath.lowprec import LowPrecisionSystem
from repro.altmath.lns import LNSSystem

__all__ = [
    "AltMathCosts",
    "AltMathSystem",
    "get_altmath",
    "register_altmath",
    "BoxedIEEE",
    "MPFRSystem",
    "PositSystem",
    "Posit",
    "IntervalSystem",
    "RationalSystem",
    "LowPrecisionSystem",
    "LNSSystem",
]
