"""The alternative arithmetic system interface and its cost model.

Cost constants are cycles *per call* and are what the ``altmath``
ledger category accumulates — the paper's lower bound (Figure 5) is
precisely "native time + altmath time", so these numbers, not wall
clock, define each system's intrinsic expense.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field


@dataclass(frozen=True)
class AltMathCosts:
    """Cycle costs of one system's operations."""

    promote: int = 60        # binary64 -> alt representation
    demote: int = 30         # alt representation -> binary64
    box: int = 90            # allocate + publish a heap box for a result
    load: int = 30           # follow a NaN-boxed pointer to its heap box
    compare: int = 20
    convert: int = 25        # int <-> alt conversions
    ops: dict = field(default_factory=dict)   # "add"/"mul"/... -> cycles
    libm: int = 400          # sin/cos/... unless overridden per-fn
    libm_ops: dict = field(default_factory=dict)

    def op(self, name: str) -> int:
        return self.ops.get(name, 40)

    def libm_fn(self, name: str) -> int:
        return self.libm_ops.get(name, self.libm)


class AltMathSystem(abc.ABC):
    """What FPVM requires of an arithmetic system.

    Values are opaque to FPVM; it only moves them between NaN boxes and
    feeds them back into this interface.  All entry points that accept
    binary64 data take *bit patterns* (ints), never Python floats, so
    NaN payloads survive.
    """

    #: registry key, e.g. "boxed_ieee"
    name: str = "abstract"
    costs: AltMathCosts = AltMathCosts()

    # ------------------------------------------------------- conversions
    @abc.abstractmethod
    def promote(self, bits: int):
        """Build an alt value from a binary64 bit pattern."""

    @abc.abstractmethod
    def demote(self, value) -> int:
        """Round an alt value back to a binary64 bit pattern (losing
        whatever benefit the system provided, §2.2)."""

    @abc.abstractmethod
    def from_i64(self, value: int):
        """Exact conversion from a signed 64-bit integer."""

    @abc.abstractmethod
    def to_i64(self, value, truncate: bool = True) -> int:
        """Convert to a signed 64-bit integer (two's complement in an
        unsigned int); x64 'integer indefinite' on NaN/overflow."""

    # -------------------------------------------------------- arithmetic
    @abc.abstractmethod
    def binary(self, op: str, a, b):
        """op in {add, sub, mul, div, min, max}."""

    @abc.abstractmethod
    def unary(self, op: str, a):
        """op in {sqrt, neg, abs}."""

    @abc.abstractmethod
    def compare(self, a, b) -> int | None:
        """-1/0/+1, or None when unordered."""

    def fma(self, a, b, c):
        """Fused multiply-add.  Default: two-step (systems with a real
        single-rounding fma override this)."""
        return self.binary("add", self.binary("mul", a, b), c)

    @abc.abstractmethod
    def is_nan_value(self, value) -> bool:
        """Does this alt value represent a NaN ("alternative NaN")?"""

    def libm(self, fn: str, *args):
        """Transcendental entry points used by the libm forward
        wrappers (§5.3).  Default: demote, host math, promote."""
        import math

        from repro.fpu import bits as B

        floats = [B.bits_to_float(self.demote(a)) for a in args]
        try:
            r = getattr(math, fn)(*floats)
        except (ValueError, OverflowError, ZeroDivisionError):
            r = math.nan
        return self.promote(B.float_to_bits(r))

    # ------------------------------------------------------------- misc
    def describe(self) -> str:
        return self.name


_REGISTRY: dict[str, type] = {}


def register_altmath(cls: type) -> type:
    """Class decorator registering a system under its ``name``."""
    _REGISTRY[cls.name] = cls
    return cls


def get_altmath(name: str, **kwargs) -> AltMathSystem:
    """Instantiate a registered system ("boxed_ieee", "mpfr", "posit",
    "interval", "rational")."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown altmath system {name!r}; known: {sorted(_REGISTRY)}"
        ) from None
    return cls(**kwargs)
