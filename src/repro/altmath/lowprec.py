"""Reduced-precision arithmetic systems (§2.3's "decreased precision"
extension).

The paper notes FPVM "could support decreased precision by having
every floating point instruction trap — on x64, this can be readily
done by disabling the floating point hardware altogether.  This is not
currently done."  This module implements that future-work system: a
binary float of configurable (small) mantissa width built on
:class:`~repro.fpu.softfloat.BigFloat`, used together with
``FPVMConfig(trap_all_fp=True)`` so even exact operations trap and are
re-rounded at the reduced precision.

Presets: ``precision=24`` approximates binary32, ``precision=11``
binary16, ``precision=8`` bfloat16 (mantissa width only — exponent
range is not clamped, which is the interesting axis for precision
studies; the repo documents this simplification).
"""

from __future__ import annotations

from repro.altmath.base import AltMathCosts, AltMathSystem, register_altmath
from repro.altmath.mpfr import MPFRSystem
from repro.fpu.softfloat import BigFloatContext


@register_altmath
class LowPrecisionSystem(MPFRSystem):
    """Same machinery as the MPFR system, different precision regime —
    and much cheaper ops (a software binary32 is nearly free next to a
    200-bit multiply)."""

    name = "lowprec"

    def __init__(self, precision: int = 24):
        if precision > 52:
            raise ValueError(
                "lowprec is for *decreased* precision (<= 52 bits); "
                "use the mpfr system for increased precision"
            )
        super().__init__(precision)
        self.costs = AltMathCosts(
            promote=40,
            demote=30,
            box=100,
            load=35,
            compare=20,
            convert=30,
            ops={"add": 35, "sub": 35, "mul": 45, "div": 80, "sqrt": 110,
                 "min": 25, "max": 25, "neg": 10, "abs": 10},
            libm=320,
        )
