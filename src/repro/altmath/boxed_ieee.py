"""Boxed IEEE: the paper's worst-case alternative arithmetic system.

Arithmetic is plain hardware binary64 — the value held in the heap box
is just a double — so results are bit-for-bit identical to native
execution (§6: "we expect to get bit-for-bit equal results to the
baseline, and we have validated this to be true").  Its only purpose is
to exercise the full NaN-boxing machinery at the lowest possible
altmath cost, making virtualization overhead maximally visible.
"""

from __future__ import annotations

from repro.altmath.base import AltMathCosts, AltMathSystem, register_altmath
from repro.fpu import bits as B
from repro.machine import hostfp

_INDEFINITE = 0x8000_0000_0000_0000


@register_altmath
class BoxedIEEE(AltMathSystem):
    name = "boxed_ieee"
    costs = AltMathCosts(
        promote=55,
        demote=25,
        box=130,
        load=35,
        compare=18,
        convert=22,
        ops={"add": 22, "sub": 22, "mul": 26, "div": 40, "sqrt": 48,
             "min": 20, "max": 20, "neg": 8, "abs": 8, "fma": 30},
        libm=90,
        libm_ops={"sin": 95, "cos": 95, "tan": 120, "atan": 100,
                  "asin": 110, "acos": 110, "exp": 85, "log": 85,
                  "fabs": 20, "atan2": 120, "pow": 150, "fmod": 90},
    )

    # Values ARE binary64 bit patterns (stored in a heap box by the
    # allocator; the box is the allocator's concern, not ours).
    def promote(self, bits: int):
        return bits

    def demote(self, value) -> int:
        return value

    def from_i64(self, value: int):
        return hostfp.native_fp("cvtsi2sd", value & 0xFFFF_FFFF_FFFF_FFFF)

    def to_i64(self, value, truncate: bool = True) -> int:
        return hostfp.native_fp("cvttsd2si" if truncate else "cvtsd2si", value)

    def binary(self, op: str, a, b):
        return hostfp.native_fp(op, a, b)

    def unary(self, op: str, a):
        if op == "sqrt":
            return hostfp.native_fp("sqrt", a)
        if op == "neg":
            return a ^ B.F64_SIGN_MASK
        if op == "abs":
            return a & ~B.F64_SIGN_MASK
        raise KeyError(op)

    def fma(self, a, b, c):
        return hostfp.native_fp("fma", a, b, c)

    def compare(self, a, b) -> int | None:
        if B.is_nan(a) or B.is_nan(b):
            return None
        fa, fb = B.bits_to_float(a), B.bits_to_float(b)
        if fa == fb:
            return 0
        return -1 if fa < fb else 1

    def is_nan_value(self, value) -> bool:
        return B.is_nan(value)

    def libm(self, fn: str, *args):
        import math

        floats = [B.bits_to_float(a) for a in args]
        try:
            if fn == "log":
                x = floats[0]
                r = math.log(x) if x > 0 else (-math.inf if x == 0 else math.nan)
            elif fn == "fabs":
                r = abs(floats[0])
            else:
                r = getattr(math, fn)(*floats)
        except (ValueError, OverflowError, ZeroDivisionError):
            r = math.nan
        return B.float_to_bits(r)
