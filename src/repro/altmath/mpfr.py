"""The MPFR-class system: 200-bit correctly-rounded binary floating
point, built on :class:`repro.fpu.softfloat.BigFloat` (§6.4).

Costs are calibrated to MPFR's relative expense over hardware doubles
at ~200 bits (add ~10x a hardware add, mul ~20x, transcendentals in the
thousands of cycles) — the paper's Figure 13 shows altmath dominating
every breakdown bar once these are in play.
"""

from __future__ import annotations

from repro.altmath.base import AltMathCosts, AltMathSystem, register_altmath
from repro.fpu import bits as B
from repro.fpu.softfloat import BigFloat, BigFloatContext


@register_altmath
class MPFRSystem(AltMathSystem):
    name = "mpfr"

    def __init__(self, precision: int = 200):
        self.ctx = BigFloatContext(precision)
        self.precision = precision
        scale = max(1.0, precision / 64.0)
        self.costs = AltMathCosts(
            promote=180,
            demote=140,
            box=95,
            compare=60,
            convert=120,
            ops={
                "add": int(220 * scale / 3),
                "sub": int(220 * scale / 3),
                "mul": int(420 * scale / 3),
                "div": int(900 * scale / 3),
                "sqrt": int(1300 * scale / 3),
                "fma": int(560 * scale / 3),
                "min": 70,
                "max": 70,
                "neg": 30,
                "abs": 30,
            },
            libm=int(4200 * scale / 3),
        )

    def promote(self, bits: int) -> BigFloat:
        return BigFloat.from_float64_bits(bits, self.ctx)

    def demote(self, value: BigFloat) -> int:
        return value.to_float64_bits()

    def from_i64(self, value: int) -> BigFloat:
        value &= 0xFFFF_FFFF_FFFF_FFFF
        if value >= 1 << 63:
            value -= 1 << 64
        return BigFloat.from_int(value, self.ctx)

    def to_i64(self, value: BigFloat, truncate: bool = True) -> int:
        indefinite = 0x8000_0000_0000_0000
        if value.is_nan() or value.is_inf():
            return indefinite
        frac = value.to_fraction()
        if truncate:
            t = int(frac)  # int() truncates toward zero for Fraction
        else:
            # round half to even
            from fractions import Fraction

            floor = frac.numerator // frac.denominator
            rem = frac - floor
            if rem > Fraction(1, 2) or (rem == Fraction(1, 2) and floor % 2):
                t = floor + 1
            else:
                t = floor
        if not (-(2**63) <= t <= 2**63 - 1):
            return indefinite
        return t & 0xFFFF_FFFF_FFFF_FFFF

    def binary(self, op: str, a: BigFloat, b: BigFloat) -> BigFloat:
        if op == "add":
            return a.add(b, self.ctx)
        if op == "sub":
            return a.sub(b, self.ctx)
        if op == "mul":
            return a.mul(b, self.ctx)
        if op == "div":
            return a.div(b, self.ctx)
        if op in ("min", "max"):
            # SSE semantics: src2 on NaN or tie.
            c = a.cmp(b)
            if c is None or c == 0:
                return b
            if op == "min":
                return a if c < 0 else b
            return a if c > 0 else b
        raise KeyError(op)

    def unary(self, op: str, a: BigFloat) -> BigFloat:
        if op == "sqrt":
            return a.sqrt(self.ctx)
        if op == "neg":
            return a.neg()
        if op == "abs":
            return a.abs()
        raise KeyError(op)

    def fma(self, a: BigFloat, b: BigFloat, c: BigFloat) -> BigFloat:
        return a.fma(b, c, self.ctx)

    def compare(self, a: BigFloat, b: BigFloat) -> int | None:
        return a.cmp(b)

    def is_nan_value(self, value: BigFloat) -> bool:
        return value.is_nan()

    def libm(self, fn: str, *args: BigFloat) -> BigFloat:
        if fn in ("sin", "cos", "tan", "asin", "acos", "atan", "exp", "log"):
            return getattr(args[0], fn)(self.ctx)
        if fn == "fabs":
            return args[0].abs()
        if fn == "atan2":
            return self._atan2(args[0], args[1])
        if fn == "pow":
            return self._pow(args[0], args[1])
        if fn == "fmod":
            return self._fmod(args[0], args[1])
        raise KeyError(fn)

    def _atan2(self, y: BigFloat, x: BigFloat) -> BigFloat:
        from fractions import Fraction

        from repro.fpu.softfloat import _pi

        if y.is_nan() or x.is_nan():
            return BigFloat.nan(self.ctx)
        work = self.precision + 32
        pi = _pi(work)
        if x.is_zero() and y.is_zero():
            return BigFloat.zero(y._sign, self.ctx)
        if not x.is_inf() and not y.is_inf():
            xv = x.to_fraction()
            yv = y.to_fraction()
            if xv > 0:
                return y.div(x, self.ctx).atan(self.ctx)
            if xv < 0:
                base = y.div(x, self.ctx).atan(self.ctx).to_fraction()
                off = pi if yv >= 0 else -pi
                return BigFloat.from_fraction(base + off, self.ctx)
            # x == 0
            half = pi / 2
            return BigFloat.from_fraction(half if yv > 0 else -half, self.ctx)
        # Infinity cases: fall back to host semantics via demotion.
        import math

        r = math.atan2(y.to_float(), x.to_float())
        return BigFloat.from_float(r, self.ctx)

    def _pow(self, x: BigFloat, y: BigFloat) -> BigFloat:
        if x.is_nan() or y.is_nan():
            return BigFloat.nan(self.ctx)
        if y.is_zero():
            return BigFloat.from_int(1, self.ctx)
        if x.is_zero():
            return BigFloat.zero(0, self.ctx)
        if x.is_negative():
            yf = y.to_fraction() if y.is_finite() else None
            if yf is not None and yf.denominator == 1:
                mag = x.abs().log(self.ctx).mul(y, self.ctx).exp(self.ctx)
                return mag.neg() if int(yf) % 2 else mag
            return BigFloat.nan(self.ctx)
        # x > 0: exp(y * log x)
        return x.log(self.ctx).mul(y, self.ctx).exp(self.ctx)

    def _fmod(self, x: BigFloat, y: BigFloat) -> BigFloat:
        if x.is_nan() or y.is_nan() or y.is_zero() or x.is_inf():
            return BigFloat.nan(self.ctx)
        if y.is_inf() or x.is_zero():
            return x
        xv, yv = x.to_fraction(), abs(y.to_fraction())
        q = abs(xv) // yv
        r = abs(xv) - q * yv
        if xv < 0:
            r = -r
        return BigFloat.from_fraction(r, self.ctx) if r else BigFloat.zero(
            1 if xv < 0 else 0, self.ctx
        )
