"""Posit arithmetic (Gustafson's unum-III), one of the alternative
representations the paper's introduction motivates.

Implements the 2022 posit standard's layout for configurable ``nbits``
(es = 2): sign bit, regime run, 2 exponent bits, fraction; a single NaR
(Not a Real) pattern; no signed zero, no infinities, saturating
rounding at the extremes, round-to-nearest-even in the interior.

Arithmetic decodes to exact rationals, computes exactly, and re-encodes
with correct posit rounding — the reference-quality (not fast) scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction

from repro.altmath.base import AltMathCosts, AltMathSystem, register_altmath
from repro.fpu import bits as B

ES = 2  # posit standard (2022) exponent size for every width


@dataclass(frozen=True)
class Posit:
    """An nbits-wide posit, stored as its raw unsigned encoding."""

    raw: int
    nbits: int

    def __post_init__(self):
        if not 0 <= self.raw < (1 << self.nbits):
            raise ValueError("raw pattern out of range")

    @property
    def nar(self) -> bool:
        return self.raw == 1 << (self.nbits - 1)

    @property
    def is_zero(self) -> bool:
        return self.raw == 0

    def __repr__(self) -> str:
        if self.nar:
            return f"Posit(NaR, {self.nbits})"
        return f"Posit({float(posit_to_fraction(self)) if not self.is_zero else 0.0}, {self.nbits})"


def posit_to_fraction(p: Posit) -> Fraction:
    """Exact value of a non-NaR, nonzero posit."""
    if p.is_zero:
        return Fraction(0)
    if p.nar:
        raise ValueError("NaR has no value")
    n = p.nbits
    raw = p.raw
    negative = bool(raw >> (n - 1))
    if negative:
        raw = (-raw) & ((1 << n) - 1)  # two's complement negation
    # Strip sign bit; remaining n-1 bits: regime, exponent, fraction.
    body = raw & ((1 << (n - 1)) - 1)
    width = n - 1
    first = (body >> (width - 1)) & 1
    # Count the regime run of bits equal to `first`.
    run = 0
    for i in range(width - 1, -1, -1):
        if (body >> i) & 1 == first:
            run += 1
        else:
            break
    k = run - 1 if first else -run
    # Bits after the regime run and its terminator.
    rest_width = width - run - 1
    rest = body & ((1 << max(rest_width, 0)) - 1) if rest_width > 0 else 0
    if rest_width >= ES:
        e = rest >> (rest_width - ES)
        frac_width = rest_width - ES
        frac = rest & ((1 << frac_width) - 1)
    else:
        e = (rest << (ES - max(rest_width, 0))) if rest_width > 0 else 0
        frac_width = 0
        frac = 0
    scale = (1 << ES) * k + e
    mant = Fraction(frac, 1 << frac_width) + 1 if frac_width else Fraction(1)
    value = mant * (Fraction(2) ** scale)
    return -value if negative else value


def fraction_to_posit(value: Fraction, nbits: int) -> Posit:
    """Round an exact rational to the nearest posit.

    Reference-quality algorithm: positive posit encodings are strictly
    monotonic in value, so binary-search the body whose value brackets
    the magnitude, then round to nearest with ties to the even
    encoding.  Per the 2022 standard there is no underflow to zero and
    no overflow to NaR: results saturate at minpos/maxpos.
    """
    if value == 0:
        return Posit(0, nbits)
    negative = value < 0
    mag = -value if negative else value
    width = nbits - 1
    maxbody = (1 << width) - 1

    # Largest body whose value <= mag.
    lo, hi = 1, maxbody
    if mag <= _body_value(1, nbits):
        body = 1  # minpos (no underflow to zero)
    elif mag >= _body_value(maxbody, nbits):
        body = maxbody
    else:
        while lo + 1 < hi:
            mid = (lo + hi) // 2
            if _body_value(mid, nbits) <= mag:
                lo = mid
            else:
                hi = mid
        below, above = _body_value(lo, nbits), _body_value(hi, nbits)
        gap_lo = mag - below
        gap_hi = above - mag
        if gap_lo < gap_hi:
            body = lo
        elif gap_hi < gap_lo:
            body = hi
        else:
            body = lo if lo % 2 == 0 else hi  # ties to even encoding
    raw = body if not negative else (-body) & ((1 << nbits) - 1)
    return Posit(raw, nbits)


def _body_value(body: int, nbits: int) -> Fraction:
    """Value of a positive posit given its body (raw with sign bit 0)."""
    return posit_to_fraction(Posit(body, nbits))


def posit_from_float(x: float, nbits: int) -> Posit:
    if math.isnan(x) or math.isinf(x):
        return Posit(1 << (nbits - 1), nbits)  # NaR
    if x == 0:
        return Posit(0, nbits)
    return fraction_to_posit(Fraction(x), nbits)


def posit_to_float(p: Posit) -> float:
    if p.nar:
        return math.nan
    if p.is_zero:
        return 0.0
    f = posit_to_fraction(p)
    bits_, *_ = B.fraction_to_bits_rne(f)
    return B.bits_to_float(bits_)


@register_altmath
class PositSystem(AltMathSystem):
    name = "posit"

    def __init__(self, nbits: int = 64):
        if nbits < 4:
            raise ValueError("posit width must be >= 4")
        self.nbits = nbits
        self.costs = AltMathCosts(
            promote=120,
            demote=100,
            box=90,
            compare=25,
            convert=90,
            ops={"add": 150, "sub": 150, "mul": 180, "div": 350,
                 "sqrt": 450, "min": 40, "max": 40, "neg": 15, "abs": 15},
            libm=900,
        )

    def promote(self, bits: int) -> Posit:
        return posit_from_float(B.bits_to_float(bits), self.nbits)

    def demote(self, value: Posit) -> int:
        return B.float_to_bits(posit_to_float(value))

    def from_i64(self, value: int) -> Posit:
        value &= 0xFFFF_FFFF_FFFF_FFFF
        if value >= 1 << 63:
            value -= 1 << 64
        if value == 0:
            return Posit(0, self.nbits)
        return fraction_to_posit(Fraction(value), self.nbits)

    def to_i64(self, value: Posit, truncate: bool = True) -> int:
        if value.nar:
            return 0x8000_0000_0000_0000
        if value.is_zero:
            return 0
        f = posit_to_fraction(value)
        t = int(f) if truncate else round(f)
        if not (-(2**63) <= t <= 2**63 - 1):
            return 0x8000_0000_0000_0000
        return t & 0xFFFF_FFFF_FFFF_FFFF

    def binary(self, op: str, a: Posit, b: Posit) -> Posit:
        if a.nar or b.nar:
            return Posit(1 << (self.nbits - 1), self.nbits)
        if op in ("min", "max"):
            c = self.compare(a, b)
            if c == 0:
                return b
            if op == "min":
                return a if c < 0 else b
            return a if c > 0 else b
        fa = posit_to_fraction(a) if not a.is_zero else Fraction(0)
        fb = posit_to_fraction(b) if not b.is_zero else Fraction(0)
        if op == "add":
            r = fa + fb
        elif op == "sub":
            r = fa - fb
        elif op == "mul":
            r = fa * fb
        elif op == "div":
            if fb == 0:
                return Posit(1 << (self.nbits - 1), self.nbits)  # NaR
            r = fa / fb
        else:
            raise KeyError(op)
        if r == 0:
            return Posit(0, self.nbits)
        return fraction_to_posit(r, self.nbits)

    def unary(self, op: str, a: Posit) -> Posit:
        if a.nar:
            return a
        if op == "neg":
            return Posit((-a.raw) & ((1 << self.nbits) - 1), self.nbits)
        if op == "abs":
            if a.raw >> (self.nbits - 1):
                return Posit((-a.raw) & ((1 << self.nbits) - 1), self.nbits)
            return a
        if op == "sqrt":
            if a.is_zero:
                return a
            f = posit_to_fraction(a)
            if f < 0:
                return Posit(1 << (self.nbits - 1), self.nbits)
            # sqrt to nbits+8 bits then round.
            prec = self.nbits + 8
            scale = 1 << (2 * prec)
            root = math.isqrt((f.numerator * scale) // f.denominator)
            return fraction_to_posit(Fraction(root, 1 << prec), self.nbits)
        raise KeyError(op)

    def compare(self, a: Posit, b: Posit) -> int | None:
        if a.nar or b.nar:
            return None
        # Posit encodings compare like two's complement integers.
        sa = a.raw - (1 << self.nbits) if a.raw >> (self.nbits - 1) else a.raw
        sb = b.raw - (1 << self.nbits) if b.raw >> (self.nbits - 1) else b.raw
        return -1 if sa < sb else (0 if sa == sb else 1)

    def is_nan_value(self, value: Posit) -> bool:
        return value.nar
