"""The kernel trap dispatcher.

Hardware traps enter here (cost ``hw``); the kernel either routes #XF
to the FPVM kernel module's short-circuit path (if the process is
registered, §3.1) or synthesizes a POSIX signal and delivers it through
the general-purpose mechanism (cost ``kernel``), returning to user code
via sigreturn (cost ``ret``).
"""

from __future__ import annotations

from collections import Counter

from repro.errors import TrapStormError
from repro.machine.costs import DEFAULT_COSTS, CostModel
from repro.machine.cpu import MachineError, Trap, TrapKind
from repro.kernel.signals import SIGFPE, SIGTRAP, SigactionTable, SignalContext

#: consecutive same-address trap deliveries with zero retired
#: instructions in between before the kernel declares a livelock.  A
#: legitimate trap loop (an FP instruction inside a hot loop) always
#: retires at least the loop back-edge between two traps at the same
#: address, so any honest workload stays at 1.
TRAP_STORM_LIMIT = 16


class _NullLedger:
    """Cycle accounting sink used when FPVM has not attached one."""

    def charge(self, category: str, cycles: int, **kwargs) -> None:
        pass

    def count(self, name: str, n: int = 1) -> None:
        pass


class LinuxKernel:
    """One simulated kernel instance (one process's view of it)."""

    def __init__(self, costs: CostModel = DEFAULT_COSTS):
        self.costs = costs
        self.sigactions = SigactionTable()
        #: installed kernel module (None until FPVM loads it).
        self.fpvm_module = None
        self.ledger = _NullLedger()
        self.trap_counts: Counter = Counter()
        self.signal_counts: Counter = Counter()
        # Livelock detector state: (trap addr, instruction_count) of the
        # previous delivery and how many times it has repeated verbatim.
        self._storm_key: tuple[int, int] | None = None
        self._storm_count = 0

    # ----------------------------------------------------------- syscalls
    def sigaction(self, signum: int, handler) -> None:
        self.sigactions.sigaction(signum, handler)

    # ----------------------------------------------------- trap dispatch
    def deliver_trap(self, cpu, trap: Trap) -> None:
        """Entry point invoked by the CPU on a hardware trap."""
        self.trap_counts[trap.kind] += 1
        self._check_storm(cpu, trap)
        if trap.kind is TrapKind.XF:
            # #XF dispatch pays a trap-class-dependent hardware cost
            # (denormal microcode assists etc. — the Wittmann note).
            self._charge(cpu, "hw", self.costs.xf_trap_cost(trap.fp_flags))
        else:
            self._charge(cpu, "hw", self.costs.hw_trap)

        if trap.kind is TrapKind.XF:
            module = self.fpvm_module
            if module is not None and module.is_registered(cpu):
                # Trap short-circuiting: bypass signal infrastructure.
                module.short_circuit(self, cpu, trap)
                return
            self._signal_path(cpu, SIGFPE, trap)
        elif trap.kind is TrapKind.BP:
            self._signal_path(cpu, SIGTRAP, trap)
        else:  # pragma: no cover - only two trap kinds exist
            raise MachineError(f"unknown trap kind {trap.kind}")

    def _signal_path(self, cpu, signum: int, trap: Trap) -> None:
        handler = self.sigactions.lookup(signum)
        if handler is None:
            name = "SIGFPE" if signum == SIGFPE else "SIGTRAP"
            raise MachineError(
                f"{name} at {trap.addr:#x} with no handler: process killed"
            )
        self.signal_counts[signum] += 1
        # General-purpose delivery: build the signal frame, run handler,
        # then sigreturn restores the (possibly mutated) frame.
        self._charge(cpu, "kernel", self.costs.kernel_internal + self.costs.signal_deliver)
        context = SignalContext(cpu, live=False)
        handler(signum, context, trap)
        self._charge(cpu, "ret", self.costs.sigreturn)
        context.apply()

    def _check_storm(self, cpu, trap: Trap) -> None:
        """Detect the no-forward-progress trap livelock: the same
        address faulting over and over while the CPU retires nothing
        (the observable signature of a lost/dropped delivery, since the
        unhandled faulting instruction just re-executes)."""
        key = (trap.addr, cpu.instruction_count)
        if key == self._storm_key:
            self._storm_count += 1
            if self._storm_count >= TRAP_STORM_LIMIT:
                raise TrapStormError(
                    f"trap storm: {trap.kind.value} at {trap.addr:#x} "
                    f"delivered {self._storm_count} times with no retired "
                    "instructions (lost delivery?)"
                )
        else:
            self._storm_key = key
            self._storm_count = 1

    # -------------------------------------------------------- accounting
    def _charge(self, cpu, category: str, cycles: int) -> None:
        # The kernel owns the CPU-time add; the ledger entry is
        # accounting-only to avoid double charging.
        cpu.cycles += cycles
        self.ledger.charge(category, cycles, cpu_time=False)
