"""POSIX signal machinery: signal numbers, sigaction, ucontext.

A :class:`SignalContext` is the handler-visible ``ucontext_t``: it
exposes the faulted thread's register state for inspection and
mutation.  Two construction modes mirror the two delivery paths:

- **frame mode** (general signals): the kernel snapshots the register
  state into a signal frame; handler mutations are applied back at
  ``sigreturn`` — faithfully modelling that a handler writes to the
  *saved* context, not live registers.
- **live mode** (trap short-circuiting): the entry stub saves "a
  sufficient amount of state in the format of a ucontext" (§3.1); we
  model this as a view over live registers plus an eager snapshot of
  what the exit stub restores.
"""

from __future__ import annotations

from repro.machine.registers import Flags

SIGFPE = 8
SIGTRAP = 5


class SignalContext:
    """The ucontext handed to FPVM's handlers."""

    def __init__(self, cpu, live: bool):
        self.cpu = cpu
        self.live = live
        #: set by a SIGTRAP handler that wants the patched instruction
        #: executed once without re-triggering its pre-hook (the
        #: "single-step over it after demoting" path of §2.6).
        self.suppress_patch_at: int | None = None
        #: lane mask of XMM writes made through this context — the
        #: handler's *results*, which the clobber-masked exit restore
        #: must not undo.
        self.written_xmm = 0
        if live:
            self._snap = None
        else:
            self._snap = cpu.regs.snapshot()

    # ------------------------------------------------------------ registers
    @property
    def rip(self) -> int:
        return self.cpu.regs.rip if self.live else self._snap["rip"]

    @rip.setter
    def rip(self, value: int) -> None:
        if self.live:
            self.cpu.regs.rip = value
        else:
            self._snap["rip"] = value

    def read_gpr(self, rid: int) -> int:
        return self.cpu.regs.gpr[rid] if self.live else self._snap["gpr"][rid]

    def write_gpr(self, rid: int, value: int) -> None:
        if self.live:
            self.cpu.regs.write_gpr(rid, value)
        else:
            self._snap["gpr"][rid] = value & 0xFFFF_FFFF_FFFF_FFFF

    def read_xmm(self, xid: int, lane: int = 0) -> int:
        return (
            self.cpu.regs.xmm[xid][lane] if self.live else self._snap["xmm"][xid][lane]
        )

    def write_xmm(self, xid: int, value: int, lane: int = 0) -> None:
        # Lazy-FP dirty marking: handler-emulated results (sequence
        # followers, altmath commits) never pass through the CPU's FP
        # exec paths, so the context write is their one funnel.  Frame
        # mode marks the snapshot — apply() pushes it into the live
        # register file with the rest of the mutations.
        self.cpu.fp_quantum_touched = True
        self.written_xmm |= 1 << (2 * xid + lane)
        if self.live:
            self.cpu.regs.write_xmm_lane(xid, lane, value)
            self.cpu.regs.fp_dirty |= 1 << (2 * xid + lane)
        else:
            self._snap["xmm"][xid][lane] = value & 0xFFFF_FFFF_FFFF_FFFF
            self._snap["fp_dirty"] |= 1 << (2 * xid + lane)

    def raw_write_xmm(self, xid: int, value: int, lane: int = 0) -> None:
        """Write a lane *without* dirty/result tracking.  Two users: the
        handler exit stub restoring saved lanes (values the guest
        already owned — not new dirt, not a result), and the test seam
        that models the handler's host-side code trashing the bank."""
        if self.live:
            self.cpu.regs.write_xmm_lane(xid, lane, value)
        else:
            self._snap["xmm"][xid][lane] = value & 0xFFFF_FFFF_FFFF_FFFF

    @property
    def flags(self) -> Flags:
        return self.cpu.regs.flags if self.live else self._snap["flags"]

    @property
    def mxcsr(self) -> int:
        return self.cpu.regs.mxcsr if self.live else self._snap["mxcsr"]

    @mxcsr.setter
    def mxcsr(self, value: int) -> None:
        if self.live:
            self.cpu.regs.mxcsr = value
        else:
            self._snap["mxcsr"] = value

    # ------------------------------------------------------------- memory
    @property
    def memory(self):
        return self.cpu.mem

    # ------------------------------------------------------------ return
    def apply(self) -> None:
        """sigreturn / exit-stub restore: push handler mutations back
        into the live machine (register restore is a no-op in live mode)."""
        if not self.live:
            self.cpu.regs.restore(self._snap)
        if self.suppress_patch_at is not None:
            self.cpu.resume_at(self.rip, suppress_patch=True)


class SigactionTable:
    """Per-process handler registrations."""

    def __init__(self) -> None:
        self._handlers: dict[int, object] = {}

    def sigaction(self, signum: int, handler) -> None:
        """handler(signum, context) -> None"""
        self._handlers[signum] = handler

    def lookup(self, signum: int):
        return self._handlers.get(signum)
