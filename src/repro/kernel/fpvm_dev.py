"""The FPVM trap short-circuiting kernel module (§3).

The real artifact is a Linux kernel module that (a) exposes an
``ioctl()`` interface via ``/dev``, (b) replaces the x86 #XF trap
handler, and (c) for registered processes edits the interrupt frame so
the ``iret`` lands on FPVM's user-space entry stub instead of going
through ``math_error()`` and general signal delivery.

The simulation keeps the full protocol: a process opens the device,
registers its entry point, and from then on #XF traps are delivered in
~350 cycles ("stealing" the trap from Linux); unregistered processes
fall back to normal SIGFPE delivery, keeping the rest of the system
compatible.  Closing the device (or process death) revokes the
registration.
"""

from __future__ import annotations

from repro.errors import DeviceProtocolError

FPVM_IOCTL_REGISTER_ENTRY = 0xF9_01
FPVM_IOCTL_UNREGISTER = 0xF9_02

DEVICE_PATH = "/dev/fpvm_dev"


class FPVMDeviceError(DeviceProtocolError):
    """Bad ioctl, double-registration, or use after close."""


class FPVMDeviceHandle:
    """An open file descriptor on /dev/fpvm_dev."""

    def __init__(self, device: "FPVMDevice", cpu) -> None:
        self._device = device
        self._cpu = cpu
        self._open = True

    def ioctl(self, request: int, arg=None):
        if not self._open:
            raise FPVMDeviceError("ioctl on closed fd")
        if request == FPVM_IOCTL_REGISTER_ENTRY:
            if arg is None:
                raise FPVMDeviceError("REGISTER_ENTRY needs an entry point")
            self._device._register(self._cpu, arg)
            return 0
        if request == FPVM_IOCTL_UNREGISTER:
            self._device._unregister(self._cpu)
            return 0
        raise FPVMDeviceError(f"unknown ioctl request {request:#x}")

    def close(self) -> None:
        """Revokes the registration — the crash-safety property §3.1
        calls out (the process's registration dies with its fd)."""
        if self._open:
            self._device._unregister(self._cpu)
            self._open = False


class FPVMDevice:
    """The loaded kernel module.  Instantiating it 'loads' the module
    into a kernel (replacing the #XF handler)."""

    def __init__(self, kernel) -> None:
        self._entries: dict[int, object] = {}  # id(cpu) -> entry stub
        self.delivery_count = 0
        kernel.fpvm_module = self
        self._kernel = kernel

    # ------------------------------------------------------------- /dev
    def open(self, cpu) -> FPVMDeviceHandle:
        return FPVMDeviceHandle(self, cpu)

    def _register(self, cpu, entry) -> None:
        """entry(context, trap) is FPVM's landing pad.  It receives a
        live ucontext built by the entry stub."""
        self._entries[id(cpu)] = entry

    def _unregister(self, cpu) -> None:
        self._entries.pop(id(cpu), None)

    def is_registered(self, cpu) -> bool:
        return id(cpu) in self._entries

    # ---------------------------------------------------- trap stealing
    def short_circuit(self, kernel, cpu, trap) -> None:
        """Bespoke delivery: edit the interrupt frame, iret to the entry
        stub, run the FPVM handler, exit stub restores and jumps back."""
        entry = self._entries.get(id(cpu))
        if entry is None:
            # A revoked registration must never be short-circuited into:
            # the entry stub belongs to a process that gave it up.
            raise FPVMDeviceError(
                f"short-circuit delivery for unregistered thread {id(cpu):#x}"
            )
        self.delivery_count += 1
        # Bare-minimum kernel processing + iret to the landing pad.
        kernel._charge(cpu, "kernel", kernel.costs.short_deliver)
        from repro.kernel.signals import SignalContext

        # Entry stub: saves GPR/FPR/mxcsr/rflags state "in the format of
        # a ucontext" — live mode models the stub operating in-process.
        context = SignalContext(cpu, live=True)
        entry(context, trap)
        # Exit stub: restore machine state, jump to the address FPVM
        # decided on.
        kernel._charge(cpu, "ret", kernel.costs.short_return)
        context.apply()
