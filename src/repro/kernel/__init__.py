"""Linux kernel simulator.

Models the two trap-delegation paths the paper compares:

- the general-purpose POSIX signal path (``sigaction`` registration,
  kernel -> user SIGFPE/SIGTRAP delivery at ~3800 cycles, ``sigreturn``
  at ~1800 cycles), and
- the FPVM kernel module's **trap short-circuiting** path (§3): a
  process registers its user-space entry point through a ``/dev``
  ioctl; the stolen #XF handler then hands control straight to the
  entry stub for ~350 cycles and returns with an ``iretq``-style exit
  stub, an ~8x reduction in trap delegation cost.
"""

from repro.kernel.signals import SIGFPE, SIGTRAP, SignalContext
from repro.kernel.kernel import LinuxKernel
from repro.kernel.fpvm_dev import FPVMDevice, FPVMDeviceHandle, FPVM_IOCTL_REGISTER_ENTRY

__all__ = [
    "SIGFPE",
    "SIGTRAP",
    "SignalContext",
    "LinuxKernel",
    "FPVMDevice",
    "FPVMDeviceHandle",
    "FPVM_IOCTL_REGISTER_ENTRY",
]
