"""ASCII rendering of the per-figure data, matching what the paper's
figures report (bar heights become table cells; CDFs become sampled
series)."""

from __future__ import annotations

from repro.harness.configs import CONFIG_ORDER
from repro.machine.costs import LEDGER_CATEGORIES
from repro.observability import render_flow_graph, render_trap_heatmap  # noqa: F401

_DISPLAY = {
    "lorenz": "Lorenz",
    "three_body": "3-body",
    "double_pendulum": "Double Pend.",
    "fbench": "fbench",
    "ffbench": "ffbench",
    "enzo": "Enzo",
    "denorm_storm": "Denorm Storm",
    "range_storm": "Range Storm",
}


def _name(w: str) -> str:
    return _DISPLAY.get(w, w)


def render_breakdown(data: dict[str, dict[str, float]], title: str) -> str:
    """Figure 1-style: one row per workload, one column per category."""
    cats = list(LEDGER_CATEGORIES)
    lines = [title, ""]
    header = f"{'workload':<14}" + "".join(f"{c:>9}" for c in cats) + f"{'total':>10}"
    lines.append(header)
    lines.append("-" * len(header))
    for w, am in data.items():
        row = f"{_name(w):<14}"
        for c in cats:
            row += f"{am.get(c, 0.0):>9.0f}"
        row += f"{sum(am.values()):>10.0f}"
        lines.append(row)
    lines.append("")
    lines.append("(amortized CPU cycles per emulated instruction)")
    return "\n".join(lines)


def render_breakdown_by_config(data, title: str) -> str:
    """Figure 6/13-style: workload x config rows with speedup factors."""
    cats = list(LEDGER_CATEGORIES)
    lines = [title, ""]
    header = (
        f"{'workload':<14}{'config':<11}"
        + "".join(f"{c:>8}" for c in cats)
        + f"{'total':>9}{'speedup':>9}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for w, rows in data.items():
        for row in rows:
            line = f"{_name(w):<14}{row.config:<11}"
            for c in cats:
                line += f"{row.amortized.get(c, 0.0):>8.0f}"
            line += f"{sum(row.amortized.values()):>9.0f}"
            line += f"{row.speedup_vs_none:>8.1f}x"
            lines.append(line)
        lines.append("")
    return "\n".join(lines)


def render_slowdown(data: dict[str, dict[str, float]], title: str,
                    baseline_note: str = "vs native") -> str:
    """Figure 4/5/11/12-style slowdown table."""
    lines = [title, ""]
    header = f"{'workload':<14}" + "".join(f"{c:>12}" for c in CONFIG_ORDER)
    lines.append(header)
    lines.append("-" * len(header))
    for w, cfgs in data.items():
        row = f"{_name(w):<14}"
        for c in CONFIG_ORDER:
            row += f"{cfgs[c]:>11.2f}x"
        lines.append(row)
    lines.append("")
    lines.append(f"(slowdown {baseline_note}; lower is better)")
    return "\n".join(lines)


def render_cdf(data: dict[str, list], title: str, xlabel: str,
               sample_points=(1, 2, 5, 10, 20, 50, 100, 200, 400)) -> str:
    """Figure 8-style: CDF sampled at fixed ranks."""
    lines = [title, ""]
    header = f"{'workload':<14}" + "".join(f"@{p:>6}" for p in sample_points)
    lines.append(header)
    lines.append("-" * len(header))
    for w, series in data.items():
        row = f"{_name(w):<14}"
        for p in sample_points:
            if not series:
                row += f"{'-':>7}"
            else:
                idx = min(p, len(series)) - 1
                row += f"{series[idx]:>6.1f}%"
        lines.append(row)
    lines.append("")
    lines.append(f"(cumulative %, sampled at {xlabel} 1..N)")
    return "\n".join(lines)


def render_length_cdf(data: dict[str, list], title: str) -> str:
    """Figure 9-style: CDF over sequence length."""
    lines = [title, ""]
    probe = (1, 2, 3, 5, 10, 20, 50, 100)
    header = f"{'workload':<14}" + "".join(f"<={p:>5}" for p in probe)
    lines.append(header)
    lines.append("-" * len(header))
    for w, series in data.items():
        row = f"{_name(w):<14}"
        for p in probe:
            pct = 0.0
            for length, cum in series:
                if length <= p:
                    pct = cum
                else:
                    break
            row += f"{pct:>6.1f}%"
        lines.append(row)
    return "\n".join(lines)


def render_cache_sizing(data, title: str) -> str:
    """Figure 10 companion: the §6.3 trace-cache sizing arithmetic."""
    lines = [title, ""]
    header = (f"{'workload':<14}{'avg seq len':>12}{'conv. rank':>12}"
              f"{'entries':>10}{'cache KB':>10}")
    lines.append(header)
    lines.append("-" * len(header))
    for w, sizing in data.items():
        lines.append(
            f"{_name(w):<14}{sizing.average_length:>12.1f}"
            f"{sizing.convergence_rank:>12}{sizing.cache_entries:>10}"
            f"{sizing.cache_bytes // 1024:>10}"
        )
    return "\n".join(lines)


def render_trap_costs(table, title: str) -> str:
    lines = [title, ""]
    lines.append(f"  hardware #XF dispatch (hw):        {table.hw_trap:8.0f} cycles")
    lines.append(f"  SIGFPE delivery (kern):            {table.signal_delivery:8.0f} cycles")
    lines.append(f"  sigreturn (ret):                   {table.sigreturn:8.0f} cycles")
    lines.append(f"  short-circuit delivery:            {table.short_delivery:8.0f} cycles")
    lines.append(f"  short-circuit return (iretq):      {table.short_return:8.0f} cycles")
    lines.append(f"  signal path total (hw+kern+ret):   {table.signal_total:8.0f} cycles")
    lines.append(f"  short path total:                  {table.short_total:8.0f} cycles")
    lines.append("")
    lines.append(f"  trap delegation reduction: {table.delegation_reduction:.1f}x "
                 "(paper: ~8x)")
    lines.append(f"  total trap cost reduction: {table.total_reduction:.1f}x "
                 "(paper: 5980 -> ~760, ~7.9x)")
    return "\n".join(lines)


def render_trap_class_costs(rows, title: str) -> str:
    """Per-#XF-class delivery cost table: every trap class gets its own
    measured hw/signal/short column (the Wittmann et al. surcharge note:
    denormal and underflow dispatch carries a microcode assist)."""
    lines = [title, ""]
    header = (f"  {'class':<11}{'traps':>7}{'hw/trap':>10}"
              f"{'signal/trap':>13}{'short/trap':>12}{'reduction':>11}")
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for r in rows:
        lines.append(
            f"  {r.trap_class:<11}{r.traps:>7}{r.hw_per_trap:>10.0f}"
            f"{r.signal_per_trap:>13.0f}{r.short_per_trap:>12.0f}"
            f"{r.reduction:>10.1f}x"
        )
    lines.append("")
    lines.append("  (class-pure constant-operand kernels; hw/trap = base "
                 "#XF dispatch + per-class assist surcharge)")
    return "\n".join(lines)


def render_trap_microbench(table, rows,
                           title: str = "Trap delegation microbenchmark (§2.3/§3)") -> str:
    """The published trap_microbench figure: the headline delegation
    table followed by the per-class cost breakdown."""
    return (render_trap_costs(table, title) + "\n\n"
            + render_trap_class_costs(
                rows, "Per-class #XF dispatch cost (§2.3, Wittmann et al. note)"))


def render_trap_flow(heatmap_data, title: str = "Trap heatmaps and NaN-flow graphs") -> str:
    """The trap_heatmap figure: per-RIP heatmap + NaN-flow graph for
    each trap-diverse workload, one section per workload."""
    lines = [title]
    for w, (recorder, program) in heatmap_data.items():
        lines.append("")
        lines.append(render_trap_heatmap(
            recorder, program, title=f"Trap heatmap: {_name(w)}"))
        lines.append("")
        lines.append(render_flow_graph(
            recorder, program, title=f"NaN-flow graph: {_name(w)}"))
    return "\n".join(lines)


def render_magic_costs(costs, title: str) -> str:
    lines = [title, ""]
    lines.append(f"  int3 + SIGTRAP per correctness event: {costs.int3_per_event:8.0f} cycles")
    lines.append(f"  magic trap per correctness event:     {costs.magic_per_event:8.0f} cycles")
    lines.append(f"  reduction: {costs.reduction:.0f}x (paper: 14-120x)")
    return "\n".join(lines)


def render_fleet(fleet: dict, title: str) -> str:
    """Fleet front-end summary: throughput, latency percentiles, COW
    and failure counters, then per-worker warm-cache reuse rates."""
    lines = [title, ""]
    lines.append(f"  guests completed:     {fleet['guests']:>10}"
                 f"   (workers: {fleet['workers']})")
    lines.append(f"  wall seconds:         {fleet['wall_seconds']:>10.3f}")
    lines.append(f"  guests/sec:           {fleet['guests_per_sec']:>10.1f}")
    lines.append(f"  guest latency p50:    {fleet['p50_latency'] * 1e3:>10.2f} ms")
    lines.append(f"  guest latency p99:    {fleet['p99_latency'] * 1e3:>10.2f} ms")
    lines.append(f"  guest latency max:    {fleet['max_latency'] * 1e3:>10.2f} ms")
    lines.append(f"  simulated cycles:     {fleet['cycles']:>10}")
    lines.append(f"  instructions:         {fleet['instructions']:>10}")
    lines.append(f"  fp/bp traps:          {fleet['fp_traps']:>10} /"
                 f" {fleet['bp_traps']}")
    lines.append(f"  COW page faults:      {fleet['cow_faults']:>10}")
    lines.append(f"  FP switches/elided:   {fleet.get('fp_switches', 0):>10} /"
                 f" {fleet.get('fp_saves_elided', 0)}")
    lines.append(f"  crashes/retries:      {fleet['crashes']:>10} /"
                 f" {fleet['retries']}")
    lines.append(f"  rejected/failed:      {fleet['rejected']:>10} /"
                 f" {fleet['failed']}")
    per_worker = fleet.get("per_worker") or {}
    if per_worker:
        lines.append("")
        header = (f"  {'worker':<8}{'guests':>8}{'instr':>12}{'cow':>8}"
                  f"{'fpsw':>7}{'elided':>8}{'sb hit':>9}{'trace hit':>11}")
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for wid, w in per_worker.items():
            label = "inline" if wid == -1 else str(wid)
            lines.append(
                f"  {label:<8}{w['guests']:>8}{w['instructions']:>12}"
                f"{w['cow_faults']:>8}{w.get('fp_switches', 0):>7}"
                f"{w.get('fp_saves_elided', 0):>8}"
                f"{w['superblock_hit_rate'] * 100:>8.1f}%"
                f"{w['trace_cache_hit_rate'] * 100:>10.1f}%"
            )
    return "\n".join(lines)


def render_patch_sites(rows, title: str) -> str:
    lines = [title, ""]
    header = f"{'workload':<14}{'static sites':>13}{'profiler':>10}{'subset?':>9}"
    lines.append(header)
    lines.append("-" * len(header))
    for r in rows:
        lines.append(
            f"{_name(r.workload):<14}{r.static_sites:>13}{r.profiler_sites:>10}"
            f"{'yes' if r.profiler_subset else 'NO':>9}"
        )
    return "\n".join(lines)
