"""Run driver: native and virtualized executions with telemetry.

Patch-site discovery (the §5.1 profiling run) is cached per workload
build so a four-config comparison profiles once, like a developer
would ("patch their application for FPVM by simply profiling it with
the same workload").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.profiler import profile_patch_sites
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.workloads import build_program


@dataclass
class HostPerf:
    """Host-throughput layer: how fast the *simulator itself* ran.

    Orthogonal to the simulated-cycle model — two runs with identical
    ``cycles`` can differ wildly here depending on the execution tier
    (micro-op pipeline vs. single-step interpretation)."""

    seconds: float = 0.0
    instructions: int = 0
    #: micro-op engine counters (UopStats.as_dict()), if the pipeline ran.
    uop_stats: dict | None = None
    #: compiled-trace tier counters, if an FPVM was attached.
    compiled_traces: int = 0
    compiled_trace_hits: int = 0
    #: per-thread breakdown for Process runs: one dict per thread with
    #: instructions/cycles/traps, host throughput share, scheduler
    #: dispatches, and the thread's superblock quantum-exit reasons.
    threads: list | None = None
    #: scheduler-level telemetry (SchedulerStats.as_dict()): dispatches,
    #: steps, and quantum efficiency = instructions retired per dispatch.
    sched: dict | None = None
    #: cross-quantum chaining summary (telemetry.aggregate_chain_stats):
    #: link/unlink counters, chain-length histogram, cache state.
    chain: dict | None = None
    #: fused trace-JIT summary (telemetry.aggregate_trace_stats):
    #: compiles/recompiles, side-exit breakdown, trace-length histogram.
    trace: dict | None = None
    #: fleet summary (telemetry.aggregate_fleet_stats) when this perf
    #: record describes a multiprocess fleet batch rather than one run:
    #: guests/sec, p50/p99 guest latency, COW faults, retries/crashes,
    #: and per-worker warm-cache hit rates.
    fleet: dict | None = None
    #: exception-flow summary (FlowRecorder.as_dict()) when the run had
    #: the ``FPVM_FLOW`` knob / ``flow`` config field on, else None.
    flow: dict | None = None

    @property
    def ips(self) -> float:
        """Host wall-clock guest-instructions per second."""
        return self.instructions / self.seconds if self.seconds > 0 else 0.0


@dataclass
class NativeResult:
    workload: str
    cycles: int
    instructions: int
    output: list[str]
    host: HostPerf | None = None


@dataclass
class FPVMResult:
    workload: str
    config_name: str
    cycles: int
    output: list[str]
    ledger: dict[str, int]
    emulated_instructions: int
    traps: int
    avg_sequence_length: float
    gc_runs: int
    trace_stats: object  # TraceStatistics or None
    telemetry: object
    program: object
    host: HostPerf | None = None
    #: the run's FlowRecorder (full provenance graph) when exception-
    #: flow observability was enabled, else None.
    flow: object = None

    @property
    def altmath_cycles(self) -> int:
        return self.ledger["altmath"]

    def amortized(self) -> dict[str, float]:
        n = max(self.emulated_instructions, 1)
        return {k: v / n for k, v in self.ledger.items()}


@dataclass
class Comparison:
    """Native baseline + any number of virtualized runs."""

    workload: str
    native: NativeResult
    runs: dict[str, FPVMResult] = field(default_factory=dict)

    def slowdown(self, config_name: str) -> float:
        """Figure 4/11: wall-cycles ratio vs native."""
        return self.runs[config_name].cycles / self.native.cycles

    def lower_bound_cycles(self, config_name: str) -> int:
        """Figure 5's baseline: native + intrinsic altmath time."""
        return self.native.cycles + self.runs[config_name].altmath_cycles

    def slowdown_from_lower_bound(self, config_name: str) -> float:
        """Figure 5/12: 1.0 means zero virtualization overhead."""
        return self.runs[config_name].cycles / self.lower_bound_cycles(config_name)


def _cpu_chain_summary(cpu) -> dict | None:
    """Chain telemetry for a standalone CPU run, if the pipeline ran."""
    from repro.core.telemetry import aggregate_chain_stats

    stats = cpu.uop_stats
    if stats is None:
        return None
    cache = cpu._sb_cache
    return aggregate_chain_stats(
        [stats.as_dict()],
        cache.as_dict() if cache is not None else None,
    )


def _cpu_trace_summary(cpu) -> dict | None:
    """Trace-JIT telemetry for a standalone CPU run, if the pipeline ran."""
    from repro.core.telemetry import aggregate_trace_stats

    stats = cpu.uop_stats
    if stats is None:
        return None
    cache = cpu._sb_cache
    return aggregate_trace_stats(
        [stats.as_dict()],
        cache.as_dict() if cache is not None else None,
    )


def run_native(
    workload: str,
    scale: int | None = None,
    uops: bool | None = None,
    chain: bool | None = None,
    trace: bool | None = None,
    **kw,
) -> NativeResult:
    cpu = CPU(build_program(workload, scale, **kw), uops=uops, chain=chain,
              trace=trace)
    cpu.kernel = LinuxKernel()
    t0 = time.perf_counter()
    cpu.run()
    seconds = time.perf_counter() - t0
    stats = cpu.uop_stats
    host = HostPerf(
        seconds=seconds,
        instructions=cpu.instruction_count,
        uop_stats=stats.as_dict() if stats is not None else None,
        chain=_cpu_chain_summary(cpu),
        trace=_cpu_trace_summary(cpu),
    )
    return NativeResult(workload, cpu.cycles, cpu.instruction_count,
                        list(cpu.output), host=host)


def _process_host_perf(proc, seconds: float) -> HostPerf:
    """Aggregate a finished Process run into a HostPerf with per-thread
    breakdown and scheduler telemetry."""
    sched = proc.sched
    per_thread = {tid: s for tid, (d, s) in sched.per_thread.items()}
    total_sched_steps = sched.steps or 1
    threads = []
    for t in proc.threads:
        stats = t.uop_stats
        t_steps = per_thread.get(t.tid, 0)
        threads.append({
            "tid": t.tid,
            "instructions": t.instruction_count,
            "cycles": t.cycles,
            "fp_traps": t.fp_trap_count,
            "bp_traps": t.bp_trap_count,
            # wall clock is shared round-robin; attribute it by the
            # thread's share of scheduler steps.
            "ips": (t.instruction_count
                    / (seconds * t_steps / total_sched_steps)
                    if seconds > 0 and t_steps else 0.0),
            "dispatches": sched.per_thread.get(t.tid, (0, 0))[0],
            "quantum_exits": (dict(stats.quantum_exits)
                              if stats is not None else None),
        })
    total_instructions = sum(t.instruction_count for t in proc.threads)
    main_stats = proc.main.uop_stats
    from repro.core.telemetry import aggregate_chain_stats, aggregate_trace_stats

    per_thread_stats = [t.uop_stats.as_dict() for t in proc.threads
                        if t.uop_stats is not None]
    chain = (aggregate_chain_stats(per_thread_stats, proc.sb_cache.as_dict())
             if per_thread_stats else None)
    trace = (aggregate_trace_stats(per_thread_stats, proc.sb_cache.as_dict())
             if per_thread_stats else None)
    return HostPerf(
        seconds=seconds,
        instructions=total_instructions,
        uop_stats=main_stats.as_dict() if main_stats is not None else None,
        threads=threads,
        sched=sched.as_dict(),
        chain=chain,
        trace=trace,
    )


def run_native_process(
    workload: str,
    scale: int | None = None,
    uops: bool | None = None,
    chain: bool | None = None,
    trace: bool | None = None,
    quantum: int = 64,
    lazy_fp: bool | None = None,
    **kw,
) -> NativeResult:
    """Run a (typically multi-threaded) workload under the Process
    round-robin scheduler, batching each quantum through the uop
    pipeline unless ``uops=False``."""
    from repro.machine.process import Process

    proc = Process(build_program(workload, scale, **kw), uops=uops,
                   chain=chain, trace=trace, lazy_fp=lazy_fp)
    proc.kernel = LinuxKernel()
    t0 = time.perf_counter()
    proc.run(quantum=quantum)
    seconds = time.perf_counter() - t0
    host = _process_host_perf(proc, seconds)
    return NativeResult(workload, proc.total_cycles, host.instructions,
                        list(proc.main.output), host=host)


def run_fpvm_process(
    workload: str,
    config: FPVMConfig,
    config_name: str = "",
    scale: int | None = None,
    chain: bool | None = None,
    trace: bool | None = None,
    quantum: int = 64,
    lazy_fp: bool | None = None,
    **kw,
) -> FPVMResult:
    """FPVM-attached Process run: every spawned thread is intercepted
    and virtualized (§2.1), scheduled in batched quanta."""
    from repro.machine.process import Process

    program = build_program(workload, scale, **kw)
    proc = Process(program, chain=chain, trace=trace, lazy_fp=lazy_fp)
    kernel = LinuxKernel()
    vm = FPVM(config).attach_process(proc, kernel)
    t0 = time.perf_counter()
    proc.run(quantum=quantum)
    seconds = time.perf_counter() - t0
    t = vm.telemetry
    host = _process_host_perf(proc, seconds)
    host.compiled_traces = t.compiled_traces
    host.compiled_trace_hits = t.compiled_trace_hits
    if vm.flow is not None:
        host.flow = vm.flow.as_dict()
    return FPVMResult(
        workload=workload,
        config_name=config_name or _config_label(config),
        cycles=proc.total_cycles,
        output=list(proc.main.output),
        ledger=vm.ledger.snapshot(),
        emulated_instructions=t.emulated_instructions,
        traps=t.traps,
        avg_sequence_length=t.avg_sequence_length,
        gc_runs=t.gc_runs,
        trace_stats=vm.trace_stats,
        telemetry=t,
        program=program,
        host=host,
        flow=vm.flow,
    )


def run_fpvm(
    workload: str,
    config: FPVMConfig,
    config_name: str = "",
    scale: int | None = None,
    patch_sites: frozenset | None = None,
    chain: bool | None = None,
    trace: bool | None = None,
    **kw,
) -> FPVMResult:
    program = build_program(workload, scale, **kw)
    if patch_sites is not None and config.patch_sites is None:
        config = config.with_(patch_sites=patch_sites)
    cpu = CPU(program, chain=chain, trace=trace)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    t0 = time.perf_counter()
    cpu.run()
    seconds = time.perf_counter() - t0
    t = vm.telemetry
    stats = cpu.uop_stats
    host = HostPerf(
        seconds=seconds,
        instructions=cpu.instruction_count,
        uop_stats=stats.as_dict() if stats is not None else None,
        compiled_traces=t.compiled_traces,
        compiled_trace_hits=t.compiled_trace_hits,
        chain=_cpu_chain_summary(cpu),
        trace=_cpu_trace_summary(cpu),
    )
    if vm.flow is not None:
        host.flow = vm.flow.as_dict()
    return FPVMResult(
        workload=workload,
        config_name=config_name or _config_label(config),
        cycles=cpu.cycles,
        output=list(cpu.output),
        ledger=vm.ledger.snapshot(),
        emulated_instructions=t.emulated_instructions,
        traps=t.traps,
        avg_sequence_length=t.avg_sequence_length,
        gc_runs=t.gc_runs,
        trace_stats=vm.trace_stats,
        telemetry=t,
        program=program,
        host=host,
        flow=vm.flow,
    )


def run_fleet(
    workload: str,
    guests: int,
    workers: int = 2,
    scale: int | None = None,
    quantum: int = 64,
    quotas: dict | None = None,
    **kw,
):
    """Run a homogeneous fleet batch and return its FleetReport with
    ``report.host`` filled in: a fleet-level :class:`HostPerf` whose
    ``seconds`` is batch wall-clock, ``instructions`` is the exact sum
    of every guest's ledger, and ``fleet`` carries guests/sec, p50/p99
    latency, and per-worker cache-reuse rates."""
    from repro.fleet import FleetScheduler, make_batch

    jobs = make_batch(workload, guests, scale=scale, quantum=quantum, **kw)
    report = FleetScheduler(workers=workers, quotas=quotas).run(jobs)
    report.host = HostPerf(
        seconds=report.wall_seconds,
        instructions=report.fleet["instructions"],
        fleet=report.fleet,
    )
    return report


def run_comparison(
    workload: str,
    configs: dict[str, FPVMConfig],
    scale: int | None = None,
    **kw,
) -> Comparison:
    """Native + each config, sharing one profiling pass."""
    native = run_native(workload, scale, **kw)
    sites = frozenset(profile_patch_sites(build_program(workload, scale, **kw)))
    comparison = Comparison(workload, native)
    for name, config in configs.items():
        comparison.runs[name] = run_fpvm(
            workload, config, name, scale, patch_sites=sites, **kw
        )
    return comparison


def _config_label(config: FPVMConfig) -> str:
    if config.sequence_emulation and config.trap_short_circuit:
        return "SEQ_SHORT"
    if config.sequence_emulation:
        return "SEQ"
    if config.trap_short_circuit:
        return "SHORT"
    return "NONE"
