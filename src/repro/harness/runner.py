"""Run driver: native and virtualized executions with telemetry.

Patch-site discovery (the §5.1 profiling run) is cached per workload
build so a four-config comparison profiles once, like a developer
would ("patch their application for FPVM by simply profiling it with
the same workload").
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.profiler import profile_patch_sites
from repro.core.vm import FPVM, FPVMConfig
from repro.kernel.kernel import LinuxKernel
from repro.machine.cpu import CPU
from repro.workloads import build_program


@dataclass
class HostPerf:
    """Host-throughput layer: how fast the *simulator itself* ran.

    Orthogonal to the simulated-cycle model — two runs with identical
    ``cycles`` can differ wildly here depending on the execution tier
    (micro-op pipeline vs. single-step interpretation)."""

    seconds: float = 0.0
    instructions: int = 0
    #: micro-op engine counters (UopStats.as_dict()), if the pipeline ran.
    uop_stats: dict | None = None
    #: compiled-trace tier counters, if an FPVM was attached.
    compiled_traces: int = 0
    compiled_trace_hits: int = 0

    @property
    def ips(self) -> float:
        """Host wall-clock guest-instructions per second."""
        return self.instructions / self.seconds if self.seconds > 0 else 0.0


@dataclass
class NativeResult:
    workload: str
    cycles: int
    instructions: int
    output: list[str]
    host: HostPerf | None = None


@dataclass
class FPVMResult:
    workload: str
    config_name: str
    cycles: int
    output: list[str]
    ledger: dict[str, int]
    emulated_instructions: int
    traps: int
    avg_sequence_length: float
    gc_runs: int
    trace_stats: object  # TraceStatistics or None
    telemetry: object
    program: object
    host: HostPerf | None = None

    @property
    def altmath_cycles(self) -> int:
        return self.ledger["altmath"]

    def amortized(self) -> dict[str, float]:
        n = max(self.emulated_instructions, 1)
        return {k: v / n for k, v in self.ledger.items()}


@dataclass
class Comparison:
    """Native baseline + any number of virtualized runs."""

    workload: str
    native: NativeResult
    runs: dict[str, FPVMResult] = field(default_factory=dict)

    def slowdown(self, config_name: str) -> float:
        """Figure 4/11: wall-cycles ratio vs native."""
        return self.runs[config_name].cycles / self.native.cycles

    def lower_bound_cycles(self, config_name: str) -> int:
        """Figure 5's baseline: native + intrinsic altmath time."""
        return self.native.cycles + self.runs[config_name].altmath_cycles

    def slowdown_from_lower_bound(self, config_name: str) -> float:
        """Figure 5/12: 1.0 means zero virtualization overhead."""
        return self.runs[config_name].cycles / self.lower_bound_cycles(config_name)


def run_native(
    workload: str,
    scale: int | None = None,
    uops: bool | None = None,
    **kw,
) -> NativeResult:
    cpu = CPU(build_program(workload, scale, **kw), uops=uops)
    cpu.kernel = LinuxKernel()
    t0 = time.perf_counter()
    cpu.run()
    seconds = time.perf_counter() - t0
    stats = cpu.uop_stats
    host = HostPerf(
        seconds=seconds,
        instructions=cpu.instruction_count,
        uop_stats=stats.as_dict() if stats is not None else None,
    )
    return NativeResult(workload, cpu.cycles, cpu.instruction_count,
                        list(cpu.output), host=host)


def run_fpvm(
    workload: str,
    config: FPVMConfig,
    config_name: str = "",
    scale: int | None = None,
    patch_sites: frozenset | None = None,
    **kw,
) -> FPVMResult:
    program = build_program(workload, scale, **kw)
    if patch_sites is not None and config.patch_sites is None:
        config = config.with_(patch_sites=patch_sites)
    cpu = CPU(program)
    kernel = LinuxKernel()
    cpu.kernel = kernel
    vm = FPVM(config).attach(cpu, kernel)
    t0 = time.perf_counter()
    cpu.run()
    seconds = time.perf_counter() - t0
    t = vm.telemetry
    stats = cpu.uop_stats
    host = HostPerf(
        seconds=seconds,
        instructions=cpu.instruction_count,
        uop_stats=stats.as_dict() if stats is not None else None,
        compiled_traces=t.compiled_traces,
        compiled_trace_hits=t.compiled_trace_hits,
    )
    return FPVMResult(
        workload=workload,
        config_name=config_name or _config_label(config),
        cycles=cpu.cycles,
        output=list(cpu.output),
        ledger=vm.ledger.snapshot(),
        emulated_instructions=t.emulated_instructions,
        traps=t.traps,
        avg_sequence_length=t.avg_sequence_length,
        gc_runs=t.gc_runs,
        trace_stats=vm.trace_stats,
        telemetry=t,
        program=program,
        host=host,
    )


def run_comparison(
    workload: str,
    configs: dict[str, FPVMConfig],
    scale: int | None = None,
    **kw,
) -> Comparison:
    """Native + each config, sharing one profiling pass."""
    native = run_native(workload, scale, **kw)
    sites = frozenset(profile_patch_sites(build_program(workload, scale, **kw)))
    comparison = Comparison(workload, native)
    for name, config in configs.items():
        comparison.runs[name] = run_fpvm(
            workload, config, name, scale, patch_sites=sites, **kw
        )
    return comparison


def _config_label(config: FPVMConfig) -> str:
    if config.sequence_emulation and config.trap_short_circuit:
        return "SEQ_SHORT"
    if config.sequence_emulation:
        return "SEQ"
    if config.trap_short_circuit:
        return "SHORT"
    return "NONE"
