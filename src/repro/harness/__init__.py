"""Experiment harness: run configurations, per-figure data generators,
and ASCII report rendering for every table/figure in the paper's §6."""

from repro.harness.runner import (
    Comparison,
    FPVMResult,
    HostPerf,
    NativeResult,
    run_comparison,
    run_fpvm,
    run_native,
)
from repro.harness.configs import CONFIG_ORDER, named_configs
from repro.harness import figures
from repro.harness import report

__all__ = [
    "Comparison",
    "FPVMResult",
    "HostPerf",
    "NativeResult",
    "run_comparison",
    "run_fpvm",
    "run_native",
    "CONFIG_ORDER",
    "named_configs",
    "figures",
    "report",
]
