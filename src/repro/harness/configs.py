"""The four §6 run configurations, in figure order."""

from __future__ import annotations

from repro.core.vm import FPVMConfig

CONFIG_ORDER = ("NONE", "SEQ", "SHORT", "SEQ_SHORT")


def named_configs(altmath: str = "boxed_ieee", **common) -> dict[str, FPVMConfig]:
    """NONE / SEQ / SHORT / SEQ_SHORT with shared extra options.

    Magic traps/wraps and the profiling-based patch finder are always
    on, as in the paper's §6.2 breakdowns ("our magic trap and wrap
    acceleration techniques are always enabled").
    """
    return {
        "NONE": FPVMConfig.none(altmath=altmath, **common),
        "SEQ": FPVMConfig.seq(altmath=altmath, **common),
        "SHORT": FPVMConfig.short(altmath=altmath, **common),
        "SEQ_SHORT": FPVMConfig.seq_short(altmath=altmath, **common),
    }
