"""Per-figure data generators for every figure in the paper's §6 (plus
the §2.3/§3/§5.2 cost microbenchmarks).

Each ``figureN`` function returns plain data structures; rendering to
the paper-style ASCII lives in :mod:`repro.harness.report`.  A
:class:`Suite` instance caches the 6-workload x 4-config run matrix so
Figures 1/4/5/6 (and the MPFR 11/12/13) share executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.configs import CONFIG_ORDER, named_configs
from repro.harness.runner import Comparison, run_comparison, run_fpvm, run_native
from repro.machine.costs import DEFAULT_COSTS, LEDGER_CATEGORIES
from repro.workloads import WORKLOAD_NAMES

#: figure order used in the paper's bar groups.
FIGURE_WORKLOADS = ("double_pendulum", "enzo", "fbench", "ffbench", "lorenz", "three_body")


class Suite:
    """Cached full run matrix for one alternative arithmetic system."""

    def __init__(self, altmath: str = "boxed_ieee", scale_overrides: dict | None = None,
                 **config_common):
        self.altmath = altmath
        self.scale_overrides = scale_overrides or {}
        self.config_common = config_common
        self._comparisons: dict[str, Comparison] = {}

    def comparison(self, workload: str) -> Comparison:
        comp = self._comparisons.get(workload)
        if comp is None:
            comp = run_comparison(
                workload,
                named_configs(self.altmath, **self.config_common),
                scale=self.scale_overrides.get(workload),
            )
            self._comparisons[workload] = comp
        return comp

    def all(self, workloads=FIGURE_WORKLOADS) -> dict[str, Comparison]:
        return {w: self.comparison(w) for w in workloads}


# ---------------------------------------------------------------- Figure 1
def figure1(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, dict[str, float]]:
    """Baseline (NONE) amortized per-instruction cost breakdown."""
    out = {}
    for w in workloads:
        out[w] = suite.comparison(w).runs["NONE"].amortized()
    return out


# ------------------------------------------------- §2.3/§3 microbenchmarks
@dataclass
class TrapCostTable:
    """The paper's headline trap-machinery constants, measured from
    single-trap runs rather than read out of the cost table."""

    hw_trap: float
    signal_delivery: float
    sigreturn: float
    short_delivery: float
    short_return: float
    signal_total: float
    short_total: float

    @property
    def delegation_reduction(self) -> float:
        """Figure 2's ~8x claim: (kern+ret) signal vs short-circuit."""
        return (self.signal_delivery + self.sigreturn) / (
            self.short_delivery + self.short_return
        )

    @property
    def total_reduction(self) -> float:
        """hw+kern+ret: 5980 -> ~760 in the paper."""
        return self.signal_total / self.short_total


def trap_microbenchmark() -> TrapCostTable:
    """Measure delivery costs with a minimal one-trap program, isolating
    the machinery from emulation (emulation costs are identical in both
    runs and subtracted out via the ledger)."""
    from repro.core.vm import FPVMConfig

    def one_trap(short: bool):
        cfg = (FPVMConfig.short() if short else FPVMConfig.none()).with_(
            patch_site_source="none", wrap_foreign=False, collect_trace_stats=False
        )
        result = run_fpvm("lorenz", cfg, scale=4)
        n = max(result.traps, 1)
        return {k: v / n for k, v in result.ledger.items()}

    signal = one_trap(short=False)
    short = one_trap(short=True)
    c = DEFAULT_COSTS
    return TrapCostTable(
        hw_trap=signal["hw"],
        signal_delivery=signal["kernel"],
        sigreturn=signal["ret"],
        short_delivery=short["kernel"],
        short_return=short["ret"],
        signal_total=signal["hw"] + signal["kernel"] + signal["ret"],
        short_total=short["hw"] + short["kernel"] + short["ret"],
    )


def figure2(suite: Suite | None = None) -> TrapCostTable:
    """Figure 2 is the short-circuit delivery diagram; its quantitative
    content is the microbenchmark table."""
    return trap_microbenchmark()


# ---------------------------------------------------------------- Figure 3
@dataclass
class MagicTrapCosts:
    int3_per_event: float
    magic_per_event: float

    @property
    def reduction(self) -> float:
        return self.int3_per_event / self.magic_per_event


def figure3() -> MagicTrapCosts:
    """Per-correctness-event cost: int3+SIGTRAP vs magic trap, measured
    on the corr-heavy three-body workload."""
    from repro.core.vm import FPVMConfig

    def corr_cost(magic: bool) -> float:
        cfg = FPVMConfig.seq_short(magic_traps=magic)
        result = run_fpvm("three_body", cfg, scale=16)
        events = max(result.telemetry.corr_events, 1)
        corr = result.ledger["corr"]
        if not magic:
            # int3 events ride the hw+kernel+ret path; attribute the
            # per-event share of those categories measured against the
            # magic run's (which has none for corr).
            per_bp = (
                DEFAULT_COSTS.hw_trap
                + DEFAULT_COSTS.kernel_internal
                + DEFAULT_COSTS.signal_deliver
                + DEFAULT_COSTS.sigreturn
            )
            return corr / events + per_bp
        return corr / events

    return MagicTrapCosts(int3_per_event=corr_cost(False), magic_per_event=corr_cost(True))


# ------------------------------------------------------------- Figures 4/11
def figure4(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, dict[str, float]]:
    """End-to-end slowdown by workload and config."""
    return {
        w: {c: suite.comparison(w).slowdown(c) for c in CONFIG_ORDER}
        for w in workloads
    }


# ------------------------------------------------------------- Figures 5/12
def figure5(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, dict[str, float]]:
    """Slowdown relative to the altmath lower bound (1.0 = perfect)."""
    return {
        w: {c: suite.comparison(w).slowdown_from_lower_bound(c) for c in CONFIG_ORDER}
        for w in workloads
    }


# ------------------------------------------------------------- Figures 6/13
@dataclass
class BreakdownRow:
    config: str
    amortized: dict[str, float]
    speedup_vs_none: float


def figure6(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, list[BreakdownRow]]:
    """Per-config amortized breakdowns + the per-instruction speedup
    factor annotated on each bar of the paper's Figure 6."""
    out = {}
    for w in workloads:
        comp = suite.comparison(w)
        none_total = sum(comp.runs["NONE"].amortized().values())
        rows = []
        for c in CONFIG_ORDER:
            am = comp.runs[c].amortized()
            total = sum(am.values())
            rows.append(BreakdownRow(c, am, none_total / total if total else 0.0))
        out[w] = rows
    return out


# ---------------------------------------------------------------- Figure 7
def figure7(suite: Suite, workload: str = "lorenz", rank: int = 2) -> str:
    """An example instruction trace: the paper prints Lorenz's 3rd most
    popular trace (rank index 2) with its terminator starred."""
    comp = suite.comparison(workload)
    stats = comp.runs["SEQ_SHORT"].trace_stats
    ranked = stats.by_popularity()
    rec = ranked[min(rank, len(ranked) - 1)]
    program = comp.runs["SEQ_SHORT"].program
    share = 100.0 * rec.count / max(stats.total_sequences(), 1)
    header = (
        f"# {workload} trace rank {rank + 1}: {rec.length} instructions, "
        f"{rec.count} encounters ({share:.1f}% of traces), "
        f"terminated by {rec.terminator} ({rec.reason})\n"
    )
    return header + stats.format_trace(rec, program)


# ---------------------------------------------------------------- Figure 8
def figure8(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, list[float]]:
    """Rank-popularity CDF (% of emulated instructions vs rank)."""
    return {
        w: suite.comparison(w).runs["SEQ_SHORT"].trace_stats.rank_popularity_cdf()
        for w in workloads
    }


# ---------------------------------------------------------------- Figure 9
def figure9(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, list[tuple[int, float]]]:
    """Sequence-length CDF."""
    return {
        w: suite.comparison(w).runs["SEQ_SHORT"].trace_stats.length_cdf()
        for w in workloads
    }


# --------------------------------------------------------------- Figure 10
@dataclass
class CacheSizing:
    workload: str
    weighted_by_rank: list[float]
    convergence_rank: int
    average_length: float
    cache_entries: int  # convergence_rank * average_length (paper's sizing)

    @property
    def cache_bytes(self) -> int:
        return self.cache_entries * 1024  # <= 1KB per entry (§6.3)


def figure10(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, CacheSizing]:
    out = {}
    for w in workloads:
        stats = suite.comparison(w).runs["SEQ_SHORT"].trace_stats
        weighted = stats.weighted_length_by_rank()
        avg = stats.average_sequence_length()
        # Convergence: first rank within 5% of the final average.
        conv = len(weighted)
        for i, v in enumerate(weighted):
            if avg and abs(v - avg) / avg < 0.05:
                conv = i + 1
                break
        out[w] = CacheSizing(
            workload=w,
            weighted_by_rank=weighted,
            convergence_rank=conv,
            average_length=avg,
            cache_entries=int(conv * max(avg, 1.0)),
        )
    return out


# ------------------------------------------------------- profiler vs static
@dataclass
class PatchSiteComparison:
    workload: str
    static_sites: int
    profiler_sites: int
    profiler_subset: bool


def profiler_vs_static(workloads=FIGURE_WORKLOADS) -> list[PatchSiteComparison]:
    """§5.1's precision claim: profiling finds a subset of the static
    analysis's patch sites."""
    from repro.core.analysis import find_memory_escapes
    from repro.core.profiler import profile_patch_sites
    from repro.workloads import build_program

    out = []
    for w in workloads:
        program = build_program(w)
        static = find_memory_escapes(program).patch_sites
        dynamic = profile_patch_sites(program)
        out.append(
            PatchSiteComparison(w, len(static), len(dynamic), dynamic <= static)
        )
    return out
