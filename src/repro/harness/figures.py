"""Per-figure data generators for every figure in the paper's §6 (plus
the §2.3/§3/§5.2 cost microbenchmarks).

Each ``figureN`` function returns plain data structures; rendering to
the paper-style ASCII lives in :mod:`repro.harness.report`.  A
:class:`Suite` instance caches the 6-workload x 4-config run matrix so
Figures 1/4/5/6 (and the MPFR 11/12/13) share executions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.harness.configs import CONFIG_ORDER, named_configs
from repro.harness.runner import Comparison, run_comparison, run_fpvm, run_native
from repro.machine.costs import DEFAULT_COSTS, LEDGER_CATEGORIES
from repro.workloads import WORKLOAD_NAMES

#: figure order used in the paper's bar groups.
FIGURE_WORKLOADS = ("double_pendulum", "enzo", "fbench", "ffbench", "lorenz", "three_body")


class Suite:
    """Cached full run matrix for one alternative arithmetic system."""

    def __init__(self, altmath: str = "boxed_ieee", scale_overrides: dict | None = None,
                 **config_common):
        self.altmath = altmath
        self.scale_overrides = scale_overrides or {}
        self.config_common = config_common
        self._comparisons: dict[str, Comparison] = {}

    def comparison(self, workload: str) -> Comparison:
        comp = self._comparisons.get(workload)
        if comp is None:
            comp = run_comparison(
                workload,
                named_configs(self.altmath, **self.config_common),
                scale=self.scale_overrides.get(workload),
            )
            self._comparisons[workload] = comp
        return comp

    def all(self, workloads=FIGURE_WORKLOADS) -> dict[str, Comparison]:
        return {w: self.comparison(w) for w in workloads}


# ---------------------------------------------------------------- Figure 1
def figure1(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, dict[str, float]]:
    """Baseline (NONE) amortized per-instruction cost breakdown."""
    out = {}
    for w in workloads:
        out[w] = suite.comparison(w).runs["NONE"].amortized()
    return out


# ------------------------------------------------- §2.3/§3 microbenchmarks
@dataclass
class TrapCostTable:
    """The paper's headline trap-machinery constants, measured from
    single-trap runs rather than read out of the cost table."""

    hw_trap: float
    signal_delivery: float
    sigreturn: float
    short_delivery: float
    short_return: float
    signal_total: float
    short_total: float

    @property
    def delegation_reduction(self) -> float:
        """Figure 2's ~8x claim: (kern+ret) signal vs short-circuit."""
        return (self.signal_delivery + self.sigreturn) / (
            self.short_delivery + self.short_return
        )

    @property
    def total_reduction(self) -> float:
        """hw+kern+ret: 5980 -> ~760 in the paper."""
        return self.signal_total / self.short_total


def trap_microbenchmark() -> TrapCostTable:
    """Measure delivery costs with a minimal one-trap program, isolating
    the machinery from emulation (emulation costs are identical in both
    runs and subtracted out via the ledger)."""
    from repro.core.vm import FPVMConfig

    def one_trap(short: bool):
        cfg = (FPVMConfig.short() if short else FPVMConfig.none()).with_(
            patch_site_source="none", wrap_foreign=False, collect_trace_stats=False
        )
        result = run_fpvm("lorenz", cfg, scale=4)
        n = max(result.traps, 1)
        return {k: v / n for k, v in result.ledger.items()}

    signal = one_trap(short=False)
    short = one_trap(short=True)
    c = DEFAULT_COSTS
    return TrapCostTable(
        hw_trap=signal["hw"],
        signal_delivery=signal["kernel"],
        sigreturn=signal["ret"],
        short_delivery=short["kernel"],
        short_return=short["ret"],
        signal_total=signal["hw"] + signal["kernel"] + signal["ret"],
        short_total=short["hw"] + short["kernel"] + short["ret"],
    )


def figure2(suite: Suite | None = None) -> TrapCostTable:
    """Figure 2 is the short-circuit delivery diagram; its quantitative
    content is the microbenchmark table."""
    return trap_microbenchmark()


# ------------------------------------------- per-class trap microbenchmark
#: class-pure single-op kernels: both operands are constants reloaded
#: from ``.data`` every iteration, so the op keeps its true #XF class on
#: every trap (a boxed operand would turn every later trap into Invalid).
#: Ordered by the dispatcher's classification priority.
TRAP_CLASS_KERNELS = (
    ("invalid", "/", 0.0, 0.0),
    ("divzero", "/", 1.0, 0.0),
    ("denormal", "*", 1e-310, 1.0),
    ("overflow", "*", 1e308, 1e10),
    ("underflow", "*", 1e-160, 1e-165),
    ("inexact", "/", 1.0, 3.0),
)


@dataclass
class TrapClassRow:
    """Measured per-trap delivery cost for one #XF trap class."""

    trap_class: str
    traps: int
    hw_per_trap: float
    signal_per_trap: float  # hw + kern + ret down the SIGFPE path
    short_per_trap: float   # hw + kern + ret through the short circuit

    @property
    def reduction(self) -> float:
        return self.signal_per_trap / max(self.short_per_trap, 1e-9)


def _class_pure_program(op: str, a: float, b: float, scale: int):
    from repro.compiler import Bin, For, INum, Let, Module, Num
    from repro.machine.hostlib import install_host_library

    m = Module()
    main = m.function("main")
    main.emit(For("t", INum(0), INum(scale), [Let("x", Bin(op, Num(a), Num(b)))]))
    program = m.compile()
    install_host_library(program)
    return program


def trap_class_microbenchmark(scale: int = 40) -> list[TrapClassRow]:
    """Per-trap delivery cost broken out by #XF class, measured on
    class-pure kernels (one constant-operand op per iteration).  The
    hardware dispatch column carries the Wittmann et al. microcode
    assist surcharge for denormal/underflow (and smaller ones for
    overflow/divide-by-zero); invalid and inexact pay the base cost."""
    from repro.core.vm import FPVM, FPVMConfig
    from repro.kernel.kernel import LinuxKernel
    from repro.machine.cpu import CPU

    def one(op, a, b, short: bool):
        cfg = (FPVMConfig.short() if short else FPVMConfig.none()).with_(
            patch_site_source="none", wrap_foreign=False, collect_trace_stats=False
        )
        cpu = CPU(_class_pure_program(op, a, b, scale))
        kernel = LinuxKernel()
        cpu.kernel = kernel
        vm = FPVM(cfg).attach(cpu, kernel)
        cpu.run()
        n = max(vm.telemetry.traps, 1)
        ledger = vm.ledger.snapshot()
        per = {k: v / n for k, v in ledger.items()}
        return n, per.get("hw", 0.0) + per.get("kernel", 0.0) + per.get("ret", 0.0), per.get("hw", 0.0)

    rows = []
    for cls, op, a, b in TRAP_CLASS_KERNELS:
        traps, signal_per, hw_per = one(op, a, b, short=False)
        _, short_per, _ = one(op, a, b, short=True)
        rows.append(TrapClassRow(
            trap_class=cls,
            traps=traps,
            hw_per_trap=hw_per,
            signal_per_trap=signal_per,
            short_per_trap=short_per,
        ))
    return rows


# ------------------------------------------------------------ trap heatmap
#: small fixed scales so the heatmap figure is quick and deterministic;
#: the two storms show class diversity, lorenz anchors the common case.
HEATMAP_WORKLOADS = ("denorm_storm", "range_storm", "lorenz")
_HEATMAP_SCALES = {"denorm_storm": 60, "range_storm": 50, "lorenz": 40}


def trap_heatmap(workloads=HEATMAP_WORKLOADS, scales: dict | None = None):
    """Per-RIP trap heatmaps + NaN-flow graphs under the NONE config
    (trap-everything exposes every class at its true site) with flow
    recording forced on.  Returns ``{workload: (recorder, program)}``."""
    from repro.core.vm import FPVMConfig

    merged = dict(_HEATMAP_SCALES)
    merged.update(scales or {})
    out = {}
    for w in workloads:
        result = run_fpvm(w, FPVMConfig.none(flow=True), scale=merged.get(w))
        out[w] = (result.flow, result.program)
    return out


# ---------------------------------------------------------------- Figure 3
@dataclass
class MagicTrapCosts:
    int3_per_event: float
    magic_per_event: float

    @property
    def reduction(self) -> float:
        return self.int3_per_event / self.magic_per_event


def figure3() -> MagicTrapCosts:
    """Per-correctness-event cost: int3+SIGTRAP vs magic trap, measured
    on the corr-heavy three-body workload."""
    from repro.core.vm import FPVMConfig

    def corr_cost(magic: bool) -> float:
        cfg = FPVMConfig.seq_short(magic_traps=magic)
        result = run_fpvm("three_body", cfg, scale=16)
        events = max(result.telemetry.corr_events, 1)
        corr = result.ledger["corr"]
        if not magic:
            # int3 events ride the hw+kernel+ret path; attribute the
            # per-event share of those categories measured against the
            # magic run's (which has none for corr).
            per_bp = (
                DEFAULT_COSTS.hw_trap
                + DEFAULT_COSTS.kernel_internal
                + DEFAULT_COSTS.signal_deliver
                + DEFAULT_COSTS.sigreturn
            )
            return corr / events + per_bp
        return corr / events

    return MagicTrapCosts(int3_per_event=corr_cost(False), magic_per_event=corr_cost(True))


# ------------------------------------------------------------- Figures 4/11
def figure4(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, dict[str, float]]:
    """End-to-end slowdown by workload and config."""
    return {
        w: {c: suite.comparison(w).slowdown(c) for c in CONFIG_ORDER}
        for w in workloads
    }


# ------------------------------------------------------------- Figures 5/12
def figure5(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, dict[str, float]]:
    """Slowdown relative to the altmath lower bound (1.0 = perfect)."""
    return {
        w: {c: suite.comparison(w).slowdown_from_lower_bound(c) for c in CONFIG_ORDER}
        for w in workloads
    }


# ------------------------------------------------------------- Figures 6/13
@dataclass
class BreakdownRow:
    config: str
    amortized: dict[str, float]
    speedup_vs_none: float


def figure6(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, list[BreakdownRow]]:
    """Per-config amortized breakdowns + the per-instruction speedup
    factor annotated on each bar of the paper's Figure 6."""
    out = {}
    for w in workloads:
        comp = suite.comparison(w)
        none_total = sum(comp.runs["NONE"].amortized().values())
        rows = []
        for c in CONFIG_ORDER:
            am = comp.runs[c].amortized()
            total = sum(am.values())
            rows.append(BreakdownRow(c, am, none_total / total if total else 0.0))
        out[w] = rows
    return out


# ---------------------------------------------------------------- Figure 7
def figure7(suite: Suite, workload: str = "lorenz", rank: int = 2) -> str:
    """An example instruction trace: the paper prints Lorenz's 3rd most
    popular trace (rank index 2) with its terminator starred."""
    comp = suite.comparison(workload)
    stats = comp.runs["SEQ_SHORT"].trace_stats
    ranked = stats.by_popularity()
    rec = ranked[min(rank, len(ranked) - 1)]
    program = comp.runs["SEQ_SHORT"].program
    share = 100.0 * rec.count / max(stats.total_sequences(), 1)
    header = (
        f"# {workload} trace rank {rank + 1}: {rec.length} instructions, "
        f"{rec.count} encounters ({share:.1f}% of traces), "
        f"terminated by {rec.terminator} ({rec.reason})\n"
    )
    return header + stats.format_trace(rec, program)


# ---------------------------------------------------------------- Figure 8
def figure8(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, list[float]]:
    """Rank-popularity CDF (% of emulated instructions vs rank)."""
    return {
        w: suite.comparison(w).runs["SEQ_SHORT"].trace_stats.rank_popularity_cdf()
        for w in workloads
    }


# ---------------------------------------------------------------- Figure 9
def figure9(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, list[tuple[int, float]]]:
    """Sequence-length CDF."""
    return {
        w: suite.comparison(w).runs["SEQ_SHORT"].trace_stats.length_cdf()
        for w in workloads
    }


# --------------------------------------------------------------- Figure 10
@dataclass
class CacheSizing:
    workload: str
    weighted_by_rank: list[float]
    convergence_rank: int
    average_length: float
    cache_entries: int  # convergence_rank * average_length (paper's sizing)

    @property
    def cache_bytes(self) -> int:
        return self.cache_entries * 1024  # <= 1KB per entry (§6.3)


def figure10(suite: Suite, workloads=FIGURE_WORKLOADS) -> dict[str, CacheSizing]:
    out = {}
    for w in workloads:
        stats = suite.comparison(w).runs["SEQ_SHORT"].trace_stats
        weighted = stats.weighted_length_by_rank()
        avg = stats.average_sequence_length()
        # Convergence: first rank within 5% of the final average.
        conv = len(weighted)
        for i, v in enumerate(weighted):
            if avg and abs(v - avg) / avg < 0.05:
                conv = i + 1
                break
        out[w] = CacheSizing(
            workload=w,
            weighted_by_rank=weighted,
            convergence_rank=conv,
            average_length=avg,
            cache_entries=int(conv * max(avg, 1.0)),
        )
    return out


# ------------------------------------------------------- profiler vs static
@dataclass
class PatchSiteComparison:
    workload: str
    static_sites: int
    profiler_sites: int
    profiler_subset: bool


def profiler_vs_static(workloads=FIGURE_WORKLOADS) -> list[PatchSiteComparison]:
    """§5.1's precision claim: profiling finds a subset of the static
    analysis's patch sites."""
    from repro.core.analysis import find_memory_escapes
    from repro.core.profiler import profile_patch_sites
    from repro.workloads import build_program

    out = []
    for w in workloads:
        program = build_program(w)
        static = find_memory_escapes(program).patch_sites
        dynamic = profile_patch_sites(program)
        out.append(
            PatchSiteComparison(w, len(static), len(dynamic), dynamic <= static)
        )
    return out
