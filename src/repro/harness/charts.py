"""ASCII chart rendering: the paper's figures are stacked horizontal
bars (Figures 1/6/13) and grouped bars (Figures 4/5/11/12); these
renderers produce terminal equivalents of both, on top of the data the
:mod:`repro.harness.figures` generators return.
"""

from __future__ import annotations

from repro.harness.configs import CONFIG_ORDER
from repro.machine.costs import LEDGER_CATEGORIES

#: fill character per ledger category (legend printed under charts).
CATEGORY_FILL = {
    "hw": "#",
    "kernel": "K",
    "decache": "d",
    "decode": "D",
    "bind": "b",
    "emul": "e",
    "altmath": "A",
    "gc": "g",
    "corr": "c",
    "fcall": "f",
    "ret": "r",
}

_DISPLAY = {
    "lorenz": "Lorenz",
    "three_body": "3-body",
    "double_pendulum": "Double Pend.",
    "fbench": "fbench",
    "ffbench": "ffbench",
    "enzo": "Enzo",
}


def _name(w: str) -> str:
    return _DISPLAY.get(w, w)


def stacked_bar(values: dict[str, float], scale: float, width: int) -> str:
    """One stacked bar: each category contributes round(v*scale) cells,
    at least one when nonzero (so small slices stay visible)."""
    cells: list[str] = []
    for cat in LEDGER_CATEGORIES:
        v = values.get(cat, 0.0)
        if v <= 0:
            continue
        n = max(int(round(v * scale)), 1)
        cells.append(CATEGORY_FILL[cat] * n)
    bar = "".join(cells)
    return bar[:width] if len(bar) > width else bar


def legend() -> str:
    pairs = [f"{CATEGORY_FILL[c]}={c}" for c in LEDGER_CATEGORIES]
    return "legend: " + "  ".join(pairs)


def breakdown_chart(data: dict[str, dict[str, float]], title: str,
                    width: int = 72) -> str:
    """Figure 1-style: one stacked bar per workload, shared scale."""
    peak = max((sum(v.values()) for v in data.values()), default=1.0)
    scale = width / peak if peak else 1.0
    lines = [title, ""]
    for w, am in data.items():
        total = sum(am.values())
        lines.append(f"{_name(w):<14}|{stacked_bar(am, scale, width)}  {total:.0f}")
    lines.append("")
    lines.append(legend())
    lines.append(f"(amortized cycles per emulated instruction; full width = {peak:.0f})")
    return "\n".join(lines)


def breakdown_by_config_chart(data, title: str, width: int = 72) -> str:
    """Figure 6/13-style: stacked bar per workload x config, with the
    per-bar speedup factor annotated like the paper."""
    peak = 0.0
    for rows in data.values():
        for row in rows:
            peak = max(peak, sum(row.amortized.values()))
    scale = width / peak if peak else 1.0
    lines = [title, ""]
    for w, rows in data.items():
        for i, row in enumerate(rows):
            label = _name(w) if i == 0 else ""
            bar = stacked_bar(row.amortized, scale, width)
            note = "" if row.config == "NONE" else f" ({row.speedup_vs_none:.1f}x)"
            lines.append(f"{label:<14}{row.config:<10}|{bar}{note}")
        lines.append("")
    lines.append(legend())
    return "\n".join(lines)


def slowdown_chart(data: dict[str, dict[str, float]], title: str,
                   width: int = 60, log: bool = True) -> str:
    """Figure 4-style grouped bars.  Log scale by default because NONE
    dwarfs everything else, exactly as in the paper's tall-bar figure."""
    import math

    peak = max(max(cfgs.values()) for cfgs in data.values())
    lines = [title, ""]
    for w, cfgs in data.items():
        for i, cfg in enumerate(CONFIG_ORDER):
            label = _name(w) if i == 0 else ""
            v = cfgs[cfg]
            if log:
                frac = math.log10(max(v, 1.0)) / math.log10(max(peak, 10.0))
            else:
                frac = v / peak
            n = max(int(round(frac * width)), 1)
            lines.append(f"{label:<14}{cfg:<10}|{'=' * n} {v:.1f}x")
        lines.append("")
    lines.append(f"({'log' if log else 'linear'} scale; lower is better)")
    return "\n".join(lines)
