"""JSON export/import of run results.

Reproduction runs should be archivable and diffable: `to_json` captures
everything a run reports (outputs, cycle ledger, telemetry, trace
statistics) in a stable schema; `compare_runs` diffs two archives the
way EXPERIMENTS.md compares paper vs. measured.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

SCHEMA_VERSION = 1


def result_to_dict(result) -> dict:
    """Serialize an :class:`~repro.harness.runner.FPVMResult`."""
    stats = result.trace_stats
    traces = None
    if stats is not None:
        traces = [
            {
                "addrs": list(rec.addrs),
                "count": rec.count,
                "length": rec.length,
                "terminator": rec.terminator,
                "reason": rec.reason,
            }
            for rec in stats.by_popularity()
        ]
    t = result.telemetry
    return {
        "schema": SCHEMA_VERSION,
        "workload": result.workload,
        "config": result.config_name,
        "cycles": result.cycles,
        "output": list(result.output),
        "ledger": dict(result.ledger),
        "emulated_instructions": result.emulated_instructions,
        "traps": result.traps,
        "avg_sequence_length": result.avg_sequence_length,
        "gc_runs": result.gc_runs,
        "telemetry": {
            "short_circuit_traps": t.short_circuit_traps,
            "decode_hits": t.decode_hits,
            "decode_misses": t.decode_misses,
            "promotions": t.promotions,
            "demotions": t.demotions,
            "boxes_allocated": t.boxes_allocated,
            "corr_events": t.corr_events,
            "fcall_events": t.fcall_events,
            "gc_objects_collected": t.gc_objects_collected,
            "altmath_ops": dict(t.altmath_ops),
        },
        "traces": traces,
    }


def native_to_dict(native) -> dict:
    return {
        "schema": SCHEMA_VERSION,
        "workload": native.workload,
        "cycles": native.cycles,
        "instructions": native.instructions,
        "output": list(native.output),
    }


def comparison_to_dict(comparison) -> dict:
    """Serialize a :class:`~repro.harness.runner.Comparison`."""
    return {
        "schema": SCHEMA_VERSION,
        "workload": comparison.workload,
        "native": native_to_dict(comparison.native),
        "runs": {name: result_to_dict(r) for name, r in comparison.runs.items()},
        "slowdowns": {name: comparison.slowdown(name) for name in comparison.runs},
        "lower_bound_slowdowns": {
            name: comparison.slowdown_from_lower_bound(name)
            for name in comparison.runs
        },
    }


def save_json(data: dict, path) -> None:
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)


def load_json(path) -> dict:
    with open(path) as fh:
        data = json.load(fh)
    if data.get("schema") != SCHEMA_VERSION:
        raise ValueError(
            f"archive schema {data.get('schema')!r} != {SCHEMA_VERSION}"
        )
    return data


@dataclass(frozen=True)
class RunDelta:
    """One metric's movement between two archived runs."""

    metric: str
    before: float
    after: float

    @property
    def ratio(self) -> float:
        if self.before == 0:
            return float("inf") if self.after else 1.0
        return self.after / self.before


def compare_runs(before: dict, after: dict,
                 threshold: float = 0.05) -> list[RunDelta]:
    """Metrics that moved by more than ``threshold`` (fractional)
    between two `result_to_dict` archives of the same workload+config."""
    if (before["workload"], before["config"]) != (after["workload"], after["config"]):
        raise ValueError("archives are from different runs")
    deltas = []
    scalars = ["cycles", "emulated_instructions", "traps", "avg_sequence_length",
               "gc_runs"]
    for metric in scalars:
        b, a = before[metric], after[metric]
        if b == a == 0:
            continue
        if b == 0 or abs(a - b) / max(abs(b), 1e-12) > threshold:
            deltas.append(RunDelta(metric, b, a))
    for cat in before["ledger"]:
        b = before["ledger"][cat]
        a = after["ledger"].get(cat, 0)
        if b == a == 0:
            continue
        if b == 0 or abs(a - b) / max(abs(b), 1e-12) > threshold:
            deltas.append(RunDelta(f"ledger.{cat}", b, a))
    return deltas
