"""``python -m repro conformance``: drive the conformance matrix and
the fault-injection scenarios from the command line.

Default is the smoke grid (≈30 cells, a couple of seconds), the
batched-vs-stepwise scheduling axis, and every fault scenario;
``--full`` sweeps the whole matrix, ``--faults-only`` /
``--matrix-only`` / ``--sched-only`` cut it down, ``--trap-classes``
runs the trap-diverse storm rows plus a per-#XF-class coverage gate,
and ``--scenario NAME`` runs one injected fault.  Exit status is non-zero on any mismatch,
invariant failure, or undetected fault, so CI can gate on it directly.
"""

from __future__ import annotations

from repro.conformance import faults, matrix, scheduling


def add_subparser(sub) -> None:
    p = sub.add_parser(
        "conformance",
        help="differential config-matrix sweep + fault injection",
    )
    p.add_argument("--full", action="store_true",
                   help="sweep the full matrix instead of the smoke grid")
    p.add_argument("--smoke", action="store_true",
                   help="sweep the smoke grid (the default)")
    what = p.add_mutually_exclusive_group()
    what.add_argument("--matrix-only", action="store_true",
                      help="skip the fault-injection scenarios")
    what.add_argument("--faults-only", action="store_true",
                      help="skip the matrix sweep")
    what.add_argument("--sched-only", action="store_true",
                      help="run only the batched-scheduling axis")
    what.add_argument("--trap-classes", action="store_true",
                      help="run only the trap-diverse rows (storm "
                           "workloads) + per-class coverage check")
    p.add_argument("--scenario", choices=sorted(faults.SCENARIOS),
                   help="run a single fault scenario")
    p.add_argument("--verbose", action="store_true",
                   help="print each group as it completes")


def _cmd_trap_classes(args) -> int:
    """Trap-diverse rows + the per-class coverage gate: every #XF class
    must both survive the differential sweep and actually fire."""
    from repro.observability import TRAP_CLASSES

    plan = matrix.trap_class_plan()
    print(f"== trap-class matrix ({len(plan)} groups) ==")
    progress = None
    if args.verbose:
        progress = lambda r: print(f"  done {r.group.label}")
    report = matrix.sweep(plan, progress=progress)
    print(matrix.render_report(report))
    print()

    coverage = matrix.trap_class_coverage()
    print("== trap-class coverage (NONE config, flow telemetry) ==")
    header = f"  {'workload':<16}" + "".join(f"{c[:6]:>9}" for c in TRAP_CLASSES)
    print(header)
    print("  " + "-" * (len(header) - 2))
    union = set()
    for w, counts in coverage.items():
        union |= {c for c, n in counts.items() if n}
        print(f"  {w:<16}" + "".join(f"{counts.get(c, 0):>9}" for c in TRAP_CLASSES))
    missing = [c for c in TRAP_CLASSES if c not in union]
    print()
    if missing:
        print(f"trap classes never raised: {', '.join(missing)}")
    failed = (not report.ok) or bool(missing)
    print("conformance: FAIL" if failed else "conformance: all checks passed")
    return 1 if failed else 0


def cmd_conformance(args) -> int:
    failed = False

    if args.scenario:
        outcome = faults.run_scenario(args.scenario)
        print(outcome)
        return 0 if outcome.ok else 1

    if args.trap_classes:
        return _cmd_trap_classes(args)

    if not (args.faults_only or args.sched_only):
        plan = matrix.full_plan() if args.full else matrix.smoke_plan()
        grid = "full" if args.full else "smoke"
        print(f"== conformance matrix ({grid}: {len(plan)} groups) ==")
        progress = None
        if args.verbose:
            progress = lambda r: print(f"  done {r.group.label}")
        report = matrix.sweep(plan, progress=progress)
        print(matrix.render_report(report))
        print()
        failed |= not report.ok

    if not (args.faults_only or args.matrix_only):
        n_cells = scheduling.cell_count()
        print(f"== scheduling axis (batched/chained vs stepwise, "
              f"{n_cells} cells) ==")
        progress = None
        if args.verbose:
            progress = lambda c: print(f"  done {c.label}")
        checks = scheduling.sweep(progress=progress)
        print(scheduling.render_checks(checks))
        print()
        failed |= any(not c.ok for c in checks)

    if not (args.matrix_only or args.sched_only):
        print(f"== fault injection ({len(faults.SCENARIOS)} scenarios) ==")
        for outcome in faults.run_all():
            print(f"  {'ok' if outcome.ok else 'FAIL':>4} {outcome}")
            failed |= not outcome.ok
        print()

    print("conformance: FAIL" if failed else "conformance: all checks passed")
    return 1 if failed else 0
