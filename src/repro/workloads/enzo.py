"""mini-Enzo: a structured-grid hydrodynamics simulator.

Stand-in for Enzo (the 307 kLoC astrophysics AMR hydro code the paper
evaluates; §2.7, §6).  What matters for FPVM is Enzo's *workload
character*, not its astrophysics: a large instruction footprint spread
over many distinct basic blocks (the paper measures ~600 distinct
sequences averaging only ~3 instructions), heavy array traffic, and
lots of temporary FP values (more GC).

This module implements a 1D compressible-Euler solver on the Sod shock
tube: conservative variables (rho, rho*u, E) on a grid, an HLL
approximate Riemann solver with per-interface wave-speed estimates,
minmod-limited data, CFL time-step computation (a grid-wide reduction
with branches), and a conservative update — five distinct loop nests
with branchy interiors, giving exactly the many-short-sequences
profile.
"""

from __future__ import annotations

from repro.compiler import (
    Bin, Call, FCmp, For, IBin, INum, IVar, If, Let, Load, Max, Min,
    Module, Num, Print, Return, Sqrt, Store, Var,
)

GAMMA = 1.4


def build(scale: int = 24, steps: int = 3) -> Module:
    """``scale`` grid cells, ``steps`` hydro steps."""
    n = scale
    m = Module()
    for name in ("rho", "mom", "ener", "frho", "fmom", "fener",
                 "drho", "dmom", "dener"):
        m.data_array(name, n + 1)

    # minmod(a, b): the slope limiter — three-way branchy, called per
    # cell per variable, the canonical source of short FP sequences.
    mm = m.function("minmod", params=("a", "b"))
    mm.emit(If(FCmp("<=", Bin("*", Var("a"), Var("b")), Num(0.0)),
               [Return(Num(0.0))]))
    mm.emit(If(FCmp("<", Call("fabs", [Var("a")]), Call("fabs", [Var("b")])),
               [Return(Var("a"))]))
    mm.emit(Return(Var("b")))

    main = m.function("main")
    main.emit(Let("gamma", Num(GAMMA)))
    main.emit(Let("gm1", Num(GAMMA - 1.0)))
    main.emit(Let("dx", Bin("/", Num(1.0), Num(float(n)))))
    main.emit(Let("cfl", Num(0.4)))

    # --- Sod initial conditions: (rho, p) = (1, 1) | (0.125, 0.1).
    main.emit(For("i", INum(0), INum(n), [
        If(ICmp_lt_half("i", n),
           [
               Store("rho", IVar("i"), Num(1.0)),
               Store("mom", IVar("i"), Num(0.0)),
               Store("ener", IVar("i"), Num(1.0 / (GAMMA - 1.0))),
           ],
           [
               Store("rho", IVar("i"), Num(0.125)),
               Store("mom", IVar("i"), Num(0.0)),
               Store("ener", IVar("i"), Num(0.1 / (GAMMA - 1.0))),
           ]),
    ]))

    hydro_step = []
    # --- CFL: dt = cfl * dx / max(|u| + c)
    hydro_step += [
        Let("smax", Num(1e-12)),
        For("i", INum(0), INum(n), [
            Let("r", Load("rho", IVar("i"))),
            Let("u", Bin("/", Load("mom", IVar("i")), Var("r"))),
            Let("ke", Bin("*", Num(0.5), Bin("*", Var("r"), Bin("*", Var("u"), Var("u"))))),
            Let("p", Bin("*", Var("gm1"), Bin("-", Load("ener", IVar("i")), Var("ke")))),
            Let("c", Sqrt(Bin("/", Bin("*", Var("gamma"), Var("p")), Var("r")))),
            Let("s", Bin("+", Call("fabs", [Var("u")]), Var("c"))),
            If(FCmp(">", Var("s"), Var("smax")), [Let("smax", Var("s"))]),
        ]),
        Let("dt", Bin("/", Bin("*", Var("cfl"), Var("dx")), Var("smax"))),
    ]
    # --- minmod-limited slopes per conserved variable (MUSCL prep).
    hydro_step += [
        For("i", INum(1), INum(n - 1), [
            Store("drho", IVar("i"), Call("minmod", [
                Bin("-", Load("rho", IVar("i")), Load("rho", IBin("-", IVar("i"), INum(1)))),
                Bin("-", Load("rho", IBin("+", IVar("i"), INum(1))), Load("rho", IVar("i"))),
            ])),
            Store("dmom", IVar("i"), Call("minmod", [
                Bin("-", Load("mom", IVar("i")), Load("mom", IBin("-", IVar("i"), INum(1)))),
                Bin("-", Load("mom", IBin("+", IVar("i"), INum(1))), Load("mom", IVar("i"))),
            ])),
            Store("dener", IVar("i"), Call("minmod", [
                Bin("-", Load("ener", IVar("i")), Load("ener", IBin("-", IVar("i"), INum(1)))),
                Bin("-", Load("ener", IBin("+", IVar("i"), INum(1))), Load("ener", IVar("i"))),
            ])),
        ]),
    ]
    # --- HLL fluxes at each interior interface i (between i-1 and i).
    hydro_step += [
        For("i", INum(1), INum(n), [
            # left state (MUSCL-reconstructed with the limited slopes)
            Let("rl", Bin("+", Load("rho", IBin("-", IVar("i"), INum(1))),
                          Bin("*", Num(0.5), Load("drho", IBin("-", IVar("i"), INum(1)))))),
            Let("ul", Bin("/",
                          Bin("+", Load("mom", IBin("-", IVar("i"), INum(1))),
                              Bin("*", Num(0.5), Load("dmom", IBin("-", IVar("i"), INum(1))))),
                          Var("rl"))),
            Let("el", Bin("+", Load("ener", IBin("-", IVar("i"), INum(1))),
                          Bin("*", Num(0.5), Load("dener", IBin("-", IVar("i"), INum(1)))))),
            Let("pl", Bin("*", Var("gm1"), Bin("-", Var("el"),
                Bin("*", Num(0.5), Bin("*", Var("rl"), Bin("*", Var("ul"), Var("ul"))))))),
            Let("cl", Sqrt(Bin("/", Bin("*", Var("gamma"), Var("pl")), Var("rl")))),
            # right state (reconstructed toward the interface)
            Let("rr", Bin("-", Load("rho", IVar("i")),
                          Bin("*", Num(0.5), Load("drho", IVar("i"))))),
            Let("ur", Bin("/",
                          Bin("-", Load("mom", IVar("i")),
                              Bin("*", Num(0.5), Load("dmom", IVar("i")))),
                          Var("rr"))),
            Let("er", Bin("-", Load("ener", IVar("i")),
                          Bin("*", Num(0.5), Load("dener", IVar("i"))))),
            Let("pr", Bin("*", Var("gm1"), Bin("-", Var("er"),
                Bin("*", Num(0.5), Bin("*", Var("rr"), Bin("*", Var("ur"), Var("ur"))))))),
            Let("cr", Sqrt(Bin("/", Bin("*", Var("gamma"), Var("pr")), Var("rr")))),
            # wave speed estimates
            Let("sl", Min(Bin("-", Var("ul"), Var("cl")), Bin("-", Var("ur"), Var("cr")))),
            Let("sr", Max(Bin("+", Var("ul"), Var("cl")), Bin("+", Var("ur"), Var("cr")))),
            # physical fluxes left/right
            Let("f1l", Bin("*", Var("rl"), Var("ul"))),
            Let("f2l", Bin("+", Bin("*", Bin("*", Var("rl"), Var("ul")), Var("ul")), Var("pl"))),
            Let("f3l", Bin("*", Var("ul"), Bin("+", Var("el"), Var("pl")))),
            Let("f1r", Bin("*", Var("rr"), Var("ur"))),
            Let("f2r", Bin("+", Bin("*", Bin("*", Var("rr"), Var("ur")), Var("ur")), Var("pr"))),
            Let("f3r", Bin("*", Var("ur"), Bin("+", Var("er"), Var("pr")))),
            # HLL selection
            If(FCmp(">=", Var("sl"), Num(0.0)), [
                Store("frho", IVar("i"), Var("f1l")),
                Store("fmom", IVar("i"), Var("f2l")),
                Store("fener", IVar("i"), Var("f3l")),
            ], [
                If(FCmp("<=", Var("sr"), Num(0.0)), [
                    Store("frho", IVar("i"), Var("f1r")),
                    Store("fmom", IVar("i"), Var("f2r")),
                    Store("fener", IVar("i"), Var("f3r")),
                ], [
                    Let("ds", Bin("-", Var("sr"), Var("sl"))),
                    Let("srl", Bin("*", Var("sr"), Var("sl"))),
                    Store("frho", IVar("i"), Bin("/",
                        Bin("+", Bin("-", Bin("*", Var("sr"), Var("f1l")),
                                     Bin("*", Var("sl"), Var("f1r"))),
                            Bin("*", Var("srl"), Bin("-", Var("rr"), Var("rl")))),
                        Var("ds"))),
                    Store("fmom", IVar("i"), Bin("/",
                        Bin("+", Bin("-", Bin("*", Var("sr"), Var("f2l")),
                                     Bin("*", Var("sl"), Var("f2r"))),
                            Bin("*", Var("srl"),
                                Bin("-", Load("mom", IVar("i")),
                                    Load("mom", IBin("-", IVar("i"), INum(1)))))),
                        Var("ds"))),
                    Store("fener", IVar("i"), Bin("/",
                        Bin("+", Bin("-", Bin("*", Var("sr"), Var("f3l")),
                                     Bin("*", Var("sl"), Var("f3r"))),
                            Bin("*", Var("srl"), Bin("-", Var("er"), Var("el")))),
                        Var("ds"))),
                ]),
            ]),
        ]),
    ]
    # --- conservative update (interior cells; transmissive boundaries).
    hydro_step += [
        Let("lam", Bin("/", Var("dt"), Var("dx"))),
        For("i", INum(1), INum(n - 1), [
            Store("rho", IVar("i"), Bin("-", Load("rho", IVar("i")),
                Bin("*", Var("lam"), Bin("-", Load("frho", IBin("+", IVar("i"), INum(1))),
                                          Load("frho", IVar("i")))))),
            Store("mom", IVar("i"), Bin("-", Load("mom", IVar("i")),
                Bin("*", Var("lam"), Bin("-", Load("fmom", IBin("+", IVar("i"), INum(1))),
                                          Load("fmom", IVar("i")))))),
            Store("ener", IVar("i"), Bin("-", Load("ener", IVar("i")),
                Bin("*", Var("lam"), Bin("-", Load("fener", IBin("+", IVar("i"), INum(1))),
                                          Load("fener", IVar("i")))))),
        ]),
    ]

    main.emit(For("t", INum(0), INum(steps), hydro_step))

    # Print diagnostics: total mass, total energy, mid-cell density.
    main.emit(Let("mass", Num(0.0)))
    main.emit(Let("etot", Num(0.0)))
    main.emit(For("i", INum(0), INum(n), [
        Let("mass", Bin("+", Var("mass"), Load("rho", IVar("i")))),
        Let("etot", Bin("+", Var("etot"), Load("ener", IVar("i")))),
    ]))
    main.emit(Print(Bin("*", Var("mass"), Var("dx"))))
    main.emit(Print(Bin("*", Var("etot"), Var("dx"))))
    main.emit(Print(Load("rho", INum(n // 2))))
    return m


def ICmp_lt_half(var: str, n: int):
    from repro.compiler import ICmp

    return ICmp("<", IVar(var), INum(n // 2))
