"""ffbench — John Walker's fast Fourier transform benchmark.

The original executes a 2D FFT over a 256x256 complex matrix
repeatedly.  This reproduction runs the same numerical core at reduced
size: an iterative radix-2 Cooley-Tukey FFT (bit-reversal permutation
plus butterfly passes with on-the-fly sin/cos twiddles) forward and
inverse over a synthesized pulse, then checks round-trip error.  The
butterfly loops interleave heavy integer index arithmetic with the FP
work — medium sequence lengths in the paper's characterization.
"""

from __future__ import annotations

import math

from repro.compiler import (
    Bin, Call, Cast, FCmp, For, IBin, ICmp, ILet, INum, ITrunc, IVar,
    If, Let, Load, Module, Neg, Num, Print, Store, Var, While,
)


def build(scale: int = 16, passes: int = 1) -> Module:
    """``scale`` = FFT size (power of two); ``passes`` forward+inverse
    round trips."""
    n = scale
    if n & (n - 1):
        raise ValueError("FFT size must be a power of two")
    log2n = n.bit_length() - 1
    m = Module()
    m.data_array("re", n)
    m.data_array("im", n)

    # fft(direction): in-place radix-2 over re/im.
    fft = m.function("fft", params=("dirsign",))
    # --- bit reversal permutation
    fft.emit(ILet("j", INum(0)))
    fft.emit(For("i", INum(0), INum(n - 1), [
        If(ICmp("<", IVar("i"), IVar("j")), [
            Let("tr", Load("re", IVar("i"))),
            Let("ti", Load("im", IVar("i"))),
            Store("re", IVar("i"), Load("re", IVar("j"))),
            Store("im", IVar("i"), Load("im", IVar("j"))),
            Store("re", IVar("j"), Var("tr")),
            Store("im", IVar("j"), Var("ti")),
        ]),
        ILet("k", INum(n >> 1)),
        While(ICmp(">", IBin("&", IVar("j"), IVar("k")), INum(0)), [
            ILet("j", IBin("-", IVar("j"), IVar("k"))),
            ILet("k", IBin(">>", IVar("k"), INum(1))),
        ]),
        ILet("j", IBin("+", IVar("j"), IVar("k"))),
    ]))
    # --- butterfly passes
    fft.emit(ILet("len", INum(2)))
    fft.emit(While(ICmp("<=", IVar("len"), INum(n)), [
        Let("ang", Bin("/",
                       Bin("*", Var("dirsign"), Num(2.0 * math.pi)),
                       Cast(IVar("len")))),
        Let("wr", Call("cos", [Var("ang")])),
        Let("wi", Call("sin", [Var("ang")])),
        ILet("half", IBin(">>", IVar("len"), INum(1))),
        ILet("i", INum(0)),
        While(ICmp("<", IVar("i"), INum(n)), [
            Let("cr", Num(1.0)),
            Let("ci", Num(0.0)),
            For("k", INum(0), IVar("half"), [
                ILet("a", IBin("+", IVar("i"), IVar("k"))),
                ILet("b", IBin("+", IVar("a"), IVar("half"))),
                Let("xr", Load("re", IVar("b"))),
                Let("xi", Load("im", IVar("b"))),
                Let("yr", Bin("-", Bin("*", Var("xr"), Var("cr")),
                              Bin("*", Var("xi"), Var("ci")))),
                Let("yi", Bin("+", Bin("*", Var("xr"), Var("ci")),
                              Bin("*", Var("xi"), Var("cr")))),
                Store("re", IVar("b"), Bin("-", Load("re", IVar("a")), Var("yr"))),
                Store("im", IVar("b"), Bin("-", Load("im", IVar("a")), Var("yi"))),
                Store("re", IVar("a"), Bin("+", Load("re", IVar("a")), Var("yr"))),
                Store("im", IVar("a"), Bin("+", Load("im", IVar("a")), Var("yi"))),
                Let("ncr", Bin("-", Bin("*", Var("cr"), Var("wr")),
                               Bin("*", Var("ci"), Var("wi")))),
                Let("ci", Bin("+", Bin("*", Var("cr"), Var("wi")),
                              Bin("*", Var("ci"), Var("wr")))),
                Let("cr", Var("ncr")),
            ]),
            ILet("i", IBin("+", IVar("i"), IVar("len"))),
        ]),
        ILet("len", IBin("<<", IVar("len"), INum(1))),
    ]))

    main = m.function("main")
    # Synthesize the pulse: re[i] = 1 for the first quarter, else 0.
    main.emit(For("i", INum(0), INum(n), [
        Store("im", IVar("i"), Num(0.0)),
        If(ICmp("<", IVar("i"), INum(n // 4)),
           [Store("re", IVar("i"), Num(1.0))],
           [Store("re", IVar("i"), Num(0.0))]),
    ]))
    body = [
        Let("ignore", Call("fft", [Num(-1.0)])),
        Let("ignore", Call("fft", [Num(1.0)])),
        # normalize by n after the round trip
        For("i", INum(0), INum(n), [
            Store("re", IVar("i"), Bin("/", Load("re", IVar("i")), Cast(INum(n)))),
            Store("im", IVar("i"), Bin("/", Load("im", IVar("i")), Cast(INum(n)))),
        ]),
    ]
    main.emit(For("p", INum(0), INum(passes), body))
    # round-trip error: max |re[i] - pulse(i)|
    main.emit(Let("err", Num(0.0)))
    main.emit(For("i", INum(0), INum(n), [
        Let("want", Num(0.0)),
        If(ICmp("<", IVar("i"), INum(n // 4)), [Let("want", Num(1.0))]),
        Let("d", Bin("-", Load("re", IVar("i")), Var("want"))),
        If(FCmp("<", Var("d"), Num(0.0)), [Let("d", Neg(Var("d")))]),
        If(FCmp(">", Var("d"), Var("err")), [Let("err", Var("d"))]),
    ]))
    main.emit(Print(Var("err")))
    main.emit(Print(Load("re", INum(1))))
    return m
