"""Mixed integer/FP thread ensemble (`mixed_mt`): the lazy-FP showcase.

``threads`` pthread-style workers, of which only ``fp_threads`` touch
the FP unit at all: the FP workers iterate a chaotic logistic map
(``x = r*x*(1-x)``, pure XMM arithmetic), the rest run a pure-GPR
xorshift64 mixing loop and never execute a single FP instruction.

This is the workload shape the §3.1 lazy state discipline exists for:
under eager FP switching every scheduler quantum pays a full XMM bank
spill/reload even when an integer worker runs, so the (majority)
integer quanta are pure overhead; under lazy switching those quanta
retire zero FP-writing blocks and the save is elided entirely, with a
modeled #NM ownership switch only when dispatch actually alternates
between the FP workers.

Like ``lorenz_mt`` this is generated assembly (the mini-C compiler has
no thread-call support) and must run under a
:class:`repro.machine.process.Process` for the thread host API.
"""

from __future__ import annotations

from dataclasses import dataclass

#: logistic-map parameter: chaotic, and keeps x in (0, 1) forever.
R = 3.73


def fp_slots(threads: int, fp_threads: int) -> list[int]:
    """Creation-order indices of the FP workers, spread evenly so
    round-robin dispatch alternates integer and FP quanta (the
    ownership-switch worst case rather than a lucky run of FP quanta)."""
    if fp_threads <= 0:
        return []
    stride = max(threads // fp_threads, 1)
    return [min(i * stride, threads - 1) for i in range(fp_threads)]


def initial_x(fp_threads: int) -> list[float]:
    """Distinct logistic-map seeds per FP shard, all inside (0, 1)."""
    return [0.2 + 0.11 * i for i in range(fp_threads)]


def generate_source(scale: int, threads: int, fp_threads: int) -> str:
    """Emit the assembly: an FP `fworker` and an integer `iworker`, and
    a `main` that creates all workers, joins them, and prints each FP
    shard's final x then each integer shard's checksum."""
    fp_threads = max(0, min(fp_threads, threads))
    int_threads = threads - fp_threads
    slots = set(fp_slots(threads, fp_threads))
    seeds = initial_x(fp_threads)
    xs = ", ".join(repr(float(v)) for v in seeds) if seeds else "0.0"
    lines = [
        ".data",
        f"fx: .double {xs}",
        f"rconst: .double {R!r}",
        "one: .double 1.0",
        f"ints: .quad {', '.join('0' for _ in range(max(int_threads, 1)))}",
        f"nsteps: .quad {max(scale, 1)}",
        "",
        ".text",
        "fworker:",
        "  ; rdi = FP shard index; x lives in fx[rdi]",
        "  mov rbx, fx",
        "  movsd xmm0, [rbx + rdi*8]",
        "  movsd xmm1, [rip + rconst]",
        "  movsd xmm2, [rip + one]",
        "  mov rcx, [rip + nsteps]",
        "floop:",
        "  ; x = r * x * (1 - x)",
        "  movsd xmm3, xmm2",
        "  subsd xmm3, xmm0",
        "  mulsd xmm3, xmm0",
        "  mulsd xmm3, xmm1",
        "  movsd xmm0, xmm3",
        "  dec rcx",
        "  jne floop",
        "  mov rbx, fx",
        "  movsd [rbx + rdi*8], xmm0",
        "  ret",
        "",
        "iworker:",
        "  ; rdi = int shard index; xorshift64 over a per-shard seed.",
        "  mov rax, rdi",
        "  mov rbx, 2654435761",
        "  imul rax, rbx",
        "  mov rbx, 88172645463325252",
        "  add rax, rbx",
        "  mov rcx, [rip + nsteps]",
        "iloop:",
        "  mov rbx, rax",
        "  shl rbx, 13",
        "  xor rax, rbx",
        "  mov rbx, rax",
        "  shr rbx, 7",
        "  xor rax, rbx",
        "  mov rbx, rax",
        "  shl rbx, 17",
        "  xor rax, rbx",
        "  dec rcx",
        "  jne iloop",
        "  mov rbx, ints",
        "  mov [rbx + rdi*8], rax",
        "  ret",
        "",
        "main:",
    ]
    fp_idx = 0
    int_idx = 0
    for i in range(threads):
        if i in slots:
            routine, arg = "fworker", fp_idx
            fp_idx += 1
        else:
            routine, arg = "iworker", int_idx
            int_idx += 1
        lines += [
            f"  mov rdi, {routine}",
            f"  mov rsi, {arg}",
            "  call thread_create",
        ]
    for tid in range(1, threads + 1):
        lines += [
            f"  mov rdi, {tid}",
            "  call thread_join",
        ]
    for i in range(fp_threads):
        lines += [
            f"  movsd xmm0, [rip + fx + {8 * i}]",
            "  call print_f64",
        ]
    for i in range(int_threads):
        lines += [
            "  mov rbx, ints",
            f"  mov rdi, [rbx + {8 * i}]",
            "  call print_i64",
        ]
    lines.append("  hlt")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class _AsmModule:
    """Just enough module surface for the workload registry: compile()
    assembles the generated source into a Program."""

    source: str

    def compile(self):
        from repro.machine.assembler import assemble

        return assemble(self.source)


def build(scale: int = 400, threads: int = 6, fp_threads: int = 2) -> _AsmModule:
    """``scale`` loop steps per worker; ``fp_threads`` of ``threads``
    workers run the FP loop, the rest pure integer code."""
    return _AsmModule(generate_source(scale, threads, fp_threads))
