"""Workload registry: names, builders, default scales."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.machine.hostlib import install_host_library
from repro.machine.program import Program
from repro.workloads import (
    denorm_storm as _denorm_storm,
    double_pendulum as _double_pendulum,
    enzo as _enzo,
    fbench as _fbench,
    ffbench as _ffbench,
    lorenz as _lorenz,
    lorenz_mt as _lorenz_mt,
    mixed_mt as _mixed_mt,
    range_storm as _range_storm,
    three_body as _three_body,
)


@dataclass(frozen=True)
class Workload:
    name: str
    display_name: str
    builder: object
    default_scale: int
    description: str
    extra: dict = field(default_factory=dict)
    #: must run under a Process (multi-threaded: the thread_create /
    #: thread_join host API only exists there), not a bare CPU.
    requires_process: bool = False
    #: per-guest scale for fleet batches: small enough that a batch of
    #: dozens finishes interactively, large enough that per-guest work
    #: amortizes the fleet's fork/dispatch overhead (0 = default_scale).
    fleet_scale: int = 0

    @property
    def fleet_default_scale(self) -> int:
        return self.fleet_scale or self.default_scale

    def build_module(self, scale: int | None = None, **kwargs):
        merged = dict(self.extra)
        merged.update(kwargs)
        return self.builder(scale=scale or self.default_scale, **merged)

    def build_program(self, scale: int | None = None, **kwargs) -> Program:
        program = self.build_module(scale, **kwargs).compile()
        install_host_library(program)
        return program


_WORKLOADS = {
    w.name: w
    for w in [
        Workload(
            "lorenz", "Lorenz", _lorenz.build, 400,
            "Lorenz attractor: one long straight-line FP loop "
            "(long-sequence best case, ~32/trap in the paper)",
            fleet_scale=150,
        ),
        Workload(
            "three_body", "3-body", _three_body.build, 40,
            "three-body gravity with heavy position logging "
            "(more fcall + corr events)",
            fleet_scale=12,
        ),
        Workload(
            "double_pendulum", "Double Pend.", _double_pendulum.build, 60,
            "chaotic double pendulum: trig-heavy ODE",
            fleet_scale=20,
        ),
        Workload(
            "fbench", "fbench", _fbench.build, 12,
            "Walker's optical ray trace: libm-call-dominated "
            "(short sequences, ~4/trap in the paper)",
            fleet_scale=4,
        ),
        Workload(
            "ffbench", "ffbench", _ffbench.build, 16,
            "Walker's FFT benchmark: butterflies + index arithmetic",
            fleet_scale=8,
        ),
        Workload(
            "enzo", "Enzo", _enzo.build, 24,
            "mini-Enzo hydro (Sod tube, HLL): many distinct short "
            "sequences, big arrays, more GC",
            fleet_scale=8,
        ),
        Workload(
            "denorm_storm", "Denorm Storm", _denorm_storm.build, 600,
            "denormal/underflow trap storm: constant-operand ops keep "
            "their true trap class every iteration (DE, UE, PE, IE)",
            fleet_scale=200,
        ),
        Workload(
            "range_storm", "Range Storm", _range_storm.build, 500,
            "overflow/div-by-zero/invalid storm with NaN clamping plus "
            "compare and int-convert consumption (OE, ZE, IE, PE)",
            fleet_scale=150,
        ),
        Workload(
            "lorenz_mt", "Lorenz MT", _lorenz_mt.build, 300,
            "Lorenz trajectory ensemble sharded across pthread-style "
            "workers (requires a Process for the thread host API)",
            extra={"threads": 4},
            requires_process=True,
            fleet_scale=100,
        ),
        Workload(
            "mixed_mt", "Mixed MT", _mixed_mt.build, 400,
            "mostly-integer thread ensemble with a couple of FP "
            "workers: the lazy-FP save-elision showcase (requires a "
            "Process for the thread host API)",
            extra={"threads": 6, "fp_threads": 2},
            requires_process=True,
            fleet_scale=150,
        ),
    ]
}

WORKLOAD_NAMES = tuple(_WORKLOADS)


def get_workload(name: str) -> Workload:
    try:
        return _WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; known: {sorted(_WORKLOADS)}"
        ) from None


def build_program(name: str, scale: int | None = None, **kwargs) -> Program:
    return get_workload(name).build_program(scale, **kwargs)
