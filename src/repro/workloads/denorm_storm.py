"""Denormal/underflow trap storm (the trap-diverse suite, half one).

Every loop iteration raises the *rare* trap classes on operands
reloaded fresh from ``.data`` — the key to trap-class diversity under
virtualization: once a value is boxed, any consumption of it raises
Invalid (the box is an sNaN), so only constant-operand operations keep
their true class on every iteration.

Per iteration:

- ``1e-310 * 1.0`` — a subnormal *operand*, exact subnormal result:
  Denormal only (underflow needs the result to be tiny **and**
  inexact; an exact product raises no UE).
- ``1e-160 * 1e-165`` — two *normal* operands whose product is tiny
  and rounded: Underflow + Inexact, no DE.
- ``1.0 / 3.0`` — Inexact only.
- the accumulator update consumes the boxed results: Invalid.

The Wittmann et al. cost note (PAPERS.md) is why this matters for
benchmarks, not just coverage: denormal and underflow #XF dispatch
carries a microcode-assist surcharge the invalid/inexact-dominated
workloads never pay.
"""

from __future__ import annotations

from repro.compiler import Bin, For, INum, Let, Module, Num, Print, Var


def build(scale: int = 600) -> Module:
    """``scale`` iterations, each raising denormal, underflow, inexact
    and invalid traps (about 4 class-pure FP ops per iteration)."""
    m = Module()
    main = m.function("main")
    main.emit(Let("acc", Num(0.0)))

    body = [
        # Denormal: subnormal operand, exact result (DE only).
        Let("d", Bin("*", Num(1e-310), Num(1.0))),
        # Underflow: normal operands, tiny + inexact result (UE+PE).
        Let("u", Bin("*", Num(1e-160), Num(1e-165))),
        # Inexact on fresh constants (PE only).
        Let("p", Bin("/", Num(1.0), Num(3.0))),
        # Boxed consumption: every operand here is a box (sNaN) -> IE.
        Let("acc", Bin("+", Var("acc"),
                       Bin("+", Var("d"), Bin("+", Var("u"), Var("p"))))),
    ]
    main.emit(For("t", INum(0), INum(max(scale, 1)), body))

    main.emit(Print(Var("acc")))
    return m
