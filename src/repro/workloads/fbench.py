"""fbench — John Walker's floating point trigonometry benchmark.

The original traces four light wavelengths through a four-surface
telescope objective, dominated by sin/asin/atan evaluations inside a
per-surface transit routine.  This reproduction keeps that structure:
a ``transit_surface`` routine applying Snell's law via arcsine and a
paraxial approximation pass, iterated over surfaces and wavelengths.
Frequent libm calls split FP sequences quickly — the paper measures
fbench's average sequence length at ~4.
"""

from __future__ import annotations

from repro.compiler import (
    Bin, Call, For, INum, IVar, Let, Load, Module, Num, Print, Return,
    Sqrt, Store, Var,
)

#: Walker's WISP objective: (radius of curvature, index of refraction,
#: distance to next surface) — flattened per surface.
SURFACES = [
    (27.05, 1.5137, 0.52),
    (-16.68, 1.0, 0.138),
    (-16.68, 1.6164, 0.38),
    (-78.1, 1.0, 0.0),
]


def build(scale: int = 12) -> Module:
    """``scale`` full-design ray-trace iterations (the original runs the
    same trace thousands of times to measure)."""
    m = Module()
    m.data_double("radii", [s[0] for s in SURFACES])
    m.data_double("indices", [s[1] for s in SURFACES])
    m.data_double("dists", [s[2] for s in SURFACES])
    m.data_array("results", 8)

    # transit_surface(slope, height, radius, n_from, n_to) -> new slope,
    # using the marginal-ray trigonometric transit of fbench.
    f = m.function("transit", params=("slope", "height", "radius", "nfrom", "nto"))
    f.emit(Let("sagitta", Bin("/", Var("height"), Var("radius"))))
    f.emit(Let("iang", Call("asin", [Bin(
        "+",
        Bin("*", Var("sagitta"), Call("cos", [Var("slope")])),
        Call("sin", [Var("slope")]),
    )])))
    f.emit(Let("rang", Call("asin", [Bin(
        "/", Bin("*", Var("nfrom"), Call("sin", [Var("iang")])), Var("nto"))])))
    f.emit(Return(Bin("+", Bin("-", Var("slope"), Var("iang")), Var("rang"))))

    main = m.function("main")
    main.emit(Let("aperture", Num(4.0)))
    main.emit(Let("acc", Num(0.0)))
    main.emit(For("iter", INum(0), INum(scale), [
        # marginal and paraxial rays
        Let("slope", Num(0.0)),
        Let("height", Bin("/", Var("aperture"), Num(2.0))),
        Let("nprev", Num(1.0)),
        For("s", INum(0), INum(len(SURFACES)), [
            Let("radius", Load("radii", IVar("s"))),
            Let("nnext", Load("indices", IVar("s"))),
            Let("slope", Call("transit", [
                Var("slope"), Var("height"), Var("radius"),
                Var("nprev"), Var("nnext"),
            ])),
            Let("height", Bin(
                "-", Var("height"),
                Bin("*", Load("dists", IVar("s")), Call("tan", [Var("slope")])),
            )),
            Let("nprev", Var("nnext")),
        ]),
        # back focal distance from exit slope/height
        Let("bfd", Bin("/", Var("height"), Call("tan", [Var("slope")]))),
        Store("results", INum(0), Var("bfd")),
        Let("acc", Bin("+", Var("acc"), Var("bfd"))),
        # aberration estimate: compare against the paraxial focus
        Let("parax", Bin("/", Var("height"),
                         Bin("+", Var("slope"), Num(1e-9)))),
        Let("aberr", Bin("-", Var("bfd"), Var("parax"))),
        Store("results", INum(1), Var("aberr")),
        Let("acc", Bin("+", Var("acc"), Sqrt(Bin("*", Var("aberr"), Var("aberr"))))),
    ]))
    main.emit(Print(Load("results", INum(0))))
    main.emit(Print(Load("results", INum(1))))
    main.emit(Print(Bin("/", Var("acc"), Num(float(max(scale, 1)))))),
    return m
