"""Overflow/divide-by-zero/invalid trap storm (trap-diverse, half two).

Complements :mod:`repro.workloads.denorm_storm` at the other end of
the exponent range, again with constant operands reloaded from
``.data`` each iteration so the true trap class fires every time:

- ``1e308 * 1e10`` — Overflow (+Inexact): the boxed result is +inf.
- ``1.0 / 0.0`` — DivByZero, exact +inf.
- ``0.0 / 0.0`` — Invalid producing a *real* NaN, which the emulator
  clamps to the canonical quiet NaN instead of boxing (a ``clamped``
  kill in the flow graph, and a value the native run must agree on
  bit-for-bit).
- ``1.0 / 3.0`` — Inexact.
- a compare and an integer truncation then *consume* the boxed
  fraction (flow-graph ``consumed`` kills: values exiting FP space
  through EFLAGS and a GPR).
"""

from __future__ import annotations

from repro.compiler import (
    Bin, FCmp, For, IBin, ILet, INum, ITrunc, IVar, If, Let, Module, Num,
    Print, PrintI, Var,
)


def build(scale: int = 500) -> Module:
    m = Module()
    main = m.function("main")
    main.emit(Let("acc", Num(0.0)))
    main.emit(ILet("n", INum(0)))

    body = [
        # Overflow: both operands normal, result saturates to +inf.
        Let("big", Bin("*", Num(1e308), Num(1e10))),
        # Divide-by-zero: exact +inf, ZE only.
        Let("dz", Bin("/", Num(1.0), Num(0.0))),
        # Invalid: 0/0 -> real NaN -> canonical-qNaN clamp, no box.
        Let("nanv", Bin("/", Num(0.0), Num(0.0))),
        # Invalid on *boxed* operands: inf - inf kills the boxed
        # infinity through the clamp path (a ``clamped`` flow kill).
        Let("nans", Bin("-", Var("big"), Var("big"))),
        # Inexact.
        Let("frac", Bin("/", Num(1.0), Num(3.0))),
        # Consume the boxed fraction through a compare (ucomisd).
        If(FCmp(">", Var("frac"), Num(0.25)),
           [Let("acc", Bin("+", Var("acc"), Var("frac")))],
           [Let("acc", Bin("-", Var("acc"), Var("frac")))]),
        # ... and through an integer truncation (cvttsd2si).
        ILet("n", IBin("+", IVar("n"), ITrunc(Var("frac")))),
    ]
    main.emit(For("t", INum(0), INum(max(scale, 1)), body))

    main.emit(Print(Var("acc")))
    main.emit(PrintI(IVar("n")))
    return m
