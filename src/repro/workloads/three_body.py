"""Three-body gravity simulation (the paper's
``three_body_simulation``).

Three planar bodies under Newtonian gravity, symplectic-Euler
integrated with state in arrays.  Mirrors the paper's workload
character: it "writes more floating point data to the filesystem using
fprintf" — here, periodic ``print_f64_pair`` logging of positions plus
a raw-bits quadrant checksum (an integer read of stored doubles), so
it exercises both foreign-call wrapping (fcall) and memory-escape
correctness (corr) more than the other benchmarks (§2.7).
"""

from __future__ import annotations

from repro.compiler import (
    Bin, For, IBin, IBits, ILet, INum, IVar, Let, Load, Module, Num,
    Print, PrintI, PrintPair, Sqrt, Store, Var,
)


def build(scale: int = 40, log_every: int = 8) -> Module:
    """``scale`` time steps; positions logged every ``log_every``."""
    m = Module()
    # state arrays: x, y, vx, vy per body; masses.
    for name in ("px", "py", "vx", "vy", "ax", "ay"):
        m.data_array(name, 3)
    m.data_double("mass", [1.0, 0.9, 1.1])
    m.data_double("init_px", [-1.0, 1.0, 0.0])
    m.data_double("init_py", [0.0, 0.0, 0.8])
    m.data_double("init_vx", [0.2, -0.2, 0.0])
    m.data_double("init_vy", [-0.3, 0.3, 0.1])

    main = m.function("main")
    main.emit(Let("g", Num(1.0)))
    main.emit(Let("dt", Num(0.01)))
    main.emit(Let("soft", Num(1e-4)))
    main.emit(ILet("hash", INum(0)))

    main.emit(For("i", INum(0), INum(3), [
        Store("px", IVar("i"), Load("init_px", IVar("i"))),
        Store("py", IVar("i"), Load("init_py", IVar("i"))),
        Store("vx", IVar("i"), Load("init_vx", IVar("i"))),
        Store("vy", IVar("i"), Load("init_vy", IVar("i"))),
    ]))

    accel = For("i", INum(0), INum(3), [
        Let("axi", Num(0.0)),
        Let("ayi", Num(0.0)),
        For("j", INum(0), INum(3), [
            Let("rx", Bin("-", Load("px", IVar("j")), Load("px", IVar("i")))),
            Let("ry", Bin("-", Load("py", IVar("j")), Load("py", IVar("i")))),
            Let("r2", Bin("+", Bin("+", Bin("*", Var("rx"), Var("rx")),
                                 Bin("*", Var("ry"), Var("ry"))), Var("soft"))),
            Let("r", Sqrt(Var("r2"))),
            Let("inv3", Bin("/", Num(1.0), Bin("*", Var("r2"), Var("r")))),
            Let("f", Bin("*", Bin("*", Var("g"), Load("mass", IVar("j"))), Var("inv3"))),
            # j == i contributes rx = ry = 0 (softened): harmless.
            Let("axi", Bin("+", Var("axi"), Bin("*", Var("f"), Var("rx")))),
            Let("ayi", Bin("+", Var("ayi"), Bin("*", Var("f"), Var("ry")))),
        ]),
        Store("ax", IVar("i"), Var("axi")),
        Store("ay", IVar("i"), Var("ayi")),
    ])

    kick_drift = For("i", INum(0), INum(3), [
        Store("vx", IVar("i"), Bin("+", Load("vx", IVar("i")),
                                   Bin("*", Var("dt"), Load("ax", IVar("i"))))),
        Store("vy", IVar("i"), Bin("+", Load("vy", IVar("i")),
                                   Bin("*", Var("dt"), Load("ay", IVar("i"))))),
        Store("px", IVar("i"), Bin("+", Load("px", IVar("i")),
                                   Bin("*", Var("dt"), Load("vx", IVar("i"))))),
        Store("py", IVar("i"), Bin("+", Load("py", IVar("i")),
                                   Bin("*", Var("dt"), Load("vy", IVar("i"))))),
    ])

    # Periodic logging: fprintf-style output of each body's position,
    # plus a sign-bit checksum that reads the stored doubles as raw
    # integers (the §2.6 memory escape).
    logging = For("i", INum(0), INum(3), [
        PrintPair(Load("px", IVar("i")), Load("py", IVar("i"))),
        ILet("hash", IBin(
            "+",
            IVar("hash"),
            IBin("&", IBin(">>", IBits("px", IVar("i")), INum(63)), INum(1)),
        )),
    ])

    main.emit(For("t", INum(0), INum(scale), [
        accel,
        kick_drift,
        ILet("m", IBin("&", IVar("t"), INum(log_every - 1))),
        # log when t % log_every == 0 (log_every must be a power of 2)
        _if_zero("m", [logging]),
    ]))
    main.emit(PrintI(IVar("hash")))
    return m


def _if_zero(var: str, body):
    from repro.compiler import ICmp, If, INum, IVar

    return If(ICmp("==", IVar(var), INum(0)), body)
