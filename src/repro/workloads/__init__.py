"""The paper's benchmark/application suite (§6).

- ``lorenz`` — a Lorenz-system simulator the authors wrote: one big
  straight-line FP loop body, the long-sequence champion (~32
  instructions per trap in the paper).
- ``three_body`` — a three-body gravity simulation that logs positions
  to "the filesystem" heavily (more foreign-call + correctness events).
- ``double_pendulum`` — a chaotic double pendulum: trig-heavy ODE.
- ``fbench`` — John Walker's optical ray-tracing benchmark: lens-
  surface transits dominated by trigonometric libm calls, which break
  sequences early (avg ~4 in the paper).
- ``ffbench`` — Walker's FFT benchmark: butterfly loops with heavy
  integer index arithmetic threaded through the FP work.
- ``enzo`` — a structured-grid hydrodynamics mini-app (Sod shock tube
  with an HLL Riemann solver) standing in for the 307 kLoC Enzo: many
  distinct basic blocks => many distinct short sequences, large arrays
  => more GC pressure.
- ``lorenz_mt`` — a trajectory ensemble sharded across N pthread-style
  workers (§2.1 thread interception); must run under a Process, which
  provides the thread_create/thread_join host API.
"""

from repro.workloads.registry import (
    WORKLOAD_NAMES,
    Workload,
    build_program,
    get_workload,
)

__all__ = ["WORKLOAD_NAMES", "Workload", "build_program", "get_workload"]
