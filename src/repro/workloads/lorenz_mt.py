"""Multi-threaded Lorenz attractor (`lorenz_mt`): trajectory sharding.

The single-threaded ``lorenz`` workload integrates one trajectory; this
one shards ``threads`` independent trajectories — each with perturbed
initial conditions, the standard chaotic-ensemble experiment — across N
pthread-style workers (``thread_create`` / ``thread_join``), exactly
the §2.1 scenario where FPVM intercepts thread startup so every worker
runs virtualized.  Each worker is the same long straight-line FP loop
as ``lorenz`` (sequence emulation's best case), so the workload
measures how much of the uop pipeline's single-thread win the batched
process scheduler preserves.

The mini-C compiler has no thread-call support, so the program is
generated assembly; the builder returns a module-shim whose
``compile()`` assembles it, which is all the workload registry needs.
Thread host functions are installed by :class:`repro.machine.process.
Process`, so this workload must run under a Process (e.g. the
``run_native_process`` / ``run_fpvm_process`` harness entry points),
not a bare CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

SIGMA = 10.0
RHO = 28.0
BETA = 8.0 / 3.0
H = 0.005


def initial_conditions(threads: int) -> list[tuple[float, float, float]]:
    """Perturbed per-shard starting points (distinct trajectories)."""
    return [(1.0 + 0.07 * i, 1.0 + 0.03 * i, 1.0) for i in range(threads)]


def _doubles(values) -> str:
    return ", ".join(repr(float(v)) for v in values)


def generate_source(scale: int, threads: int) -> str:
    """Emit the assembly: shared state arrays, one `worker` routine
    indexed by shard, and a `main` that creates/joins every worker and
    prints the final (x, y, z) of each shard."""
    init = initial_conditions(threads)
    lines = [
        ".data",
        f"xs: .double {_doubles(p[0] for p in init)}",
        f"ys: .double {_doubles(p[1] for p in init)}",
        f"zs: .double {_doubles(p[2] for p in init)}",
        f"sigma: .double {SIGMA!r}",
        f"rho: .double {RHO!r}",
        f"beta: .double {BETA!r}",
        f"h: .double {H!r}",
        f"nsteps: .quad {max(scale, 1)}",
        "",
        ".text",
        "worker:",
        "  ; rdi = shard index; state lives in xs/ys/zs[rdi]",
        "  mov rcx, [rip + nsteps]",
        "  mov rbx, xs",
        "  movsd xmm0, [rbx + rdi*8]     ; x",
        "  mov rbx, ys",
        "  movsd xmm1, [rbx + rdi*8]     ; y",
        "  mov rbx, zs",
        "  movsd xmm2, [rbx + rdi*8]     ; z",
        "  movsd xmm5, [rip + sigma]",
        "  movsd xmm6, [rip + rho]",
        "  movsd xmm7, [rip + beta]",
        "  movsd xmm8, [rip + h]",
        "wloop:",
        "  ; dx = sigma * (y - x)",
        "  movsd xmm3, xmm1",
        "  subsd xmm3, xmm0",
        "  mulsd xmm3, xmm5",
        "  ; dy = x * (rho - z) - y",
        "  movsd xmm4, xmm6",
        "  subsd xmm4, xmm2",
        "  mulsd xmm4, xmm0",
        "  subsd xmm4, xmm1",
        "  ; dz = x * y - beta * z",
        "  movsd xmm9, xmm0",
        "  mulsd xmm9, xmm1",
        "  movsd xmm10, xmm7",
        "  mulsd xmm10, xmm2",
        "  subsd xmm9, xmm10",
        "  ; forward-Euler step",
        "  mulsd xmm3, xmm8",
        "  addsd xmm0, xmm3",
        "  mulsd xmm4, xmm8",
        "  addsd xmm1, xmm4",
        "  mulsd xmm9, xmm8",
        "  addsd xmm2, xmm9",
        "  dec rcx",
        "  jne wloop",
        "  mov rbx, xs",
        "  movsd [rbx + rdi*8], xmm0",
        "  mov rbx, ys",
        "  movsd [rbx + rdi*8], xmm1",
        "  mov rbx, zs",
        "  movsd [rbx + rdi*8], xmm2",
        "  ret",
        "",
        "main:",
    ]
    for i in range(threads):
        lines += [
            "  mov rdi, worker",
            f"  mov rsi, {i}",
            "  call thread_create",
        ]
    for tid in range(1, threads + 1):
        lines += [
            f"  mov rdi, {tid}",
            "  call thread_join",
        ]
    for i in range(threads):
        for arr in ("xs", "ys", "zs"):
            lines += [
                f"  movsd xmm0, [rip + {arr} + {8 * i}]",
                "  call print_f64",
            ]
    lines.append("  hlt")
    return "\n".join(lines) + "\n"


@dataclass(frozen=True)
class _AsmModule:
    """Just enough module surface for the workload registry: compile()
    assembles the generated source into a Program."""

    source: str

    def compile(self):
        from repro.machine.assembler import assemble

        return assemble(self.source)


def build(scale: int = 300, threads: int = 4) -> _AsmModule:
    """``scale`` integration steps per shard across ``threads`` shards
    (each step is 17 worker-loop instructions, 12 of them FP)."""
    return _AsmModule(generate_source(scale, threads))
