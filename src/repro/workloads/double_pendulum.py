"""Double pendulum simulator (the paper's ``double_pendulum``).

The classic chaotic double pendulum with the full Lagrangian equations
of motion — every step calls sin/cos repeatedly, so the workload mixes
libm forward-wrapper traffic into medium-length FP sequences.
"""

from __future__ import annotations

from repro.compiler import (
    Bin, Call, For, INum, Let, Module, Neg, Num, Print, Var,
)


def build(scale: int = 60) -> Module:
    m = Module()
    main = m.function("main")
    # masses, lengths, gravity
    main.emit(Let("m1", Num(1.0)))
    main.emit(Let("m2", Num(1.0)))
    main.emit(Let("l1", Num(1.0)))
    main.emit(Let("l2", Num(1.0)))
    main.emit(Let("g", Num(9.81)))
    main.emit(Let("dt", Num(0.002)))
    # state: angles and angular velocities
    main.emit(Let("t1", Num(2.0)))
    main.emit(Let("t2", Num(1.5)))
    main.emit(Let("w1", Num(0.0)))
    main.emit(Let("w2", Num(0.0)))

    body = [
        Let("delta", Bin("-", Var("t1"), Var("t2"))),
        Let("sd", Call("sin", [Var("delta")])),
        Let("cd", Call("cos", [Var("delta")])),
        Let("s1", Call("sin", [Var("t1")])),
        Let("s2", Call("sin", [Var("t2")])),
        Let("msum", Bin("+", Var("m1"), Var("m2"))),
        Let("den", Bin("-", Var("msum"),
                       Bin("*", Var("m2"), Bin("*", Var("cd"), Var("cd"))))),
        # alpha1 numerator
        Let("n1a", Neg(Bin("*", Bin("*", Var("m2"), Var("l1")),
                           Bin("*", Bin("*", Var("w1"), Var("w1")),
                               Bin("*", Var("sd"), Var("cd")))))),
        Let("n1b", Neg(Bin("*", Bin("*", Var("m2"), Var("l2")),
                           Bin("*", Bin("*", Var("w2"), Var("w2")), Var("sd"))))),
        Let("n1c", Neg(Bin("*", Bin("*", Var("msum"), Var("g")), Var("s1")))),
        Let("n1d", Bin("*", Bin("*", Var("m2"), Var("g")),
                       Bin("*", Call("sin", [Var("t2")]), Var("cd")))),
        Let("a1", Bin("/",
                      Bin("+", Bin("+", Var("n1a"), Var("n1b")),
                          Bin("+", Var("n1c"), Var("n1d"))),
                      Bin("*", Var("l1"), Var("den")))),
        # alpha2 numerator
        Let("n2a", Bin("*", Bin("*", Var("msum"), Var("l1")),
                       Bin("*", Bin("*", Var("w1"), Var("w1")), Var("sd")))),
        Let("n2b", Bin("*", Bin("*", Var("m2"), Var("l2")),
                       Bin("*", Bin("*", Var("w2"), Var("w2")),
                           Bin("*", Var("sd"), Var("cd"))))),
        Let("n2c", Bin("*", Bin("*", Var("msum"), Var("g")),
                       Bin("*", Var("s1"), Var("cd")))),
        Let("n2d", Neg(Bin("*", Bin("*", Var("msum"), Var("g")), Var("s2")))),
        Let("a2", Bin("/",
                      Bin("+", Bin("+", Var("n2a"), Var("n2b")),
                          Bin("+", Var("n2c"), Var("n2d"))),
                      Bin("*", Var("l2"), Var("den")))),
        # integrate
        Let("w1", Bin("+", Var("w1"), Bin("*", Var("dt"), Var("a1")))),
        Let("w2", Bin("+", Var("w2"), Bin("*", Var("dt"), Var("a2")))),
        Let("t1", Bin("+", Var("t1"), Bin("*", Var("dt"), Var("w1")))),
        Let("t2", Bin("+", Var("t2"), Bin("*", Var("dt"), Var("w2")))),
    ]
    main.emit(For("step", INum(0), INum(scale), body))
    main.emit(Print(Var("t1")))
    main.emit(Print(Var("t2")))
    main.emit(Print(Var("w1")))
    main.emit(Print(Var("w2")))
    return m
