"""Lorenz attractor simulator (the paper's ``lorenz_attractor``).

Forward-Euler integration of the Lorenz system

    dx/dt = sigma (y - x)
    dy/dt = x (rho - z) - y
    dz/dt = x y - beta z

with the classic chaotic parameters.  The loop body is one long
straight line of scalar FP arithmetic and moves — exactly the shape
that gives sequence emulation its best case (the paper reports ~32
emulated instructions per trap here).  The internal state is tiny (3
scalars), so it generates comparatively little garbage (§2.7).
"""

from __future__ import annotations

from repro.compiler import (
    Bin, Cast, For, INum, IVar, Let, Module, Num, Print, Var,
)


def build(scale: int = 400, unroll: int = 1) -> Module:
    """``scale`` integration steps (each step is ~45 FP instructions).

    ``unroll`` duplicates the step body inside the loop, the compiler-
    optimization effect §6.3 discusses.
    """
    m = Module()
    main = m.function("main")
    main.emit(Let("x", Num(1.0)))
    main.emit(Let("y", Num(1.0)))
    main.emit(Let("z", Num(1.0)))
    main.emit(Let("sigma", Num(10.0)))
    main.emit(Let("rho", Num(28.0)))
    main.emit(Let("beta", Num(8.0 / 3.0)))
    main.emit(Let("h", Num(0.005)))

    step = [
        Let("dx", Bin("*", Var("sigma"), Bin("-", Var("y"), Var("x")))),
        Let("dy", Bin("-", Bin("*", Var("x"), Bin("-", Var("rho"), Var("z"))), Var("y"))),
        Let("dz", Bin("-", Bin("*", Var("x"), Var("y")), Bin("*", Var("beta"), Var("z")))),
        Let("x", Bin("+", Var("x"), Bin("*", Var("h"), Var("dx")))),
        Let("y", Bin("+", Var("y"), Bin("*", Var("h"), Var("dy")))),
        Let("z", Bin("+", Var("z"), Bin("*", Var("h"), Var("dz")))),
    ]
    body = list(step) * max(unroll, 1)
    iters = max(scale // max(unroll, 1), 1)
    main.emit(For("t", INum(0), INum(iters), body))

    main.emit(Print(Var("x")))
    main.emit(Print(Var("y")))
    main.emit(Print(Var("z")))
    return m
